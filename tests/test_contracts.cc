/**
 * @file
 * Tests for the contracts layer: MIX_EXPECT guards (including the
 * intmath domain contracts), AuditReport plumbing, the structural
 * auditors under deliberate corruption, and the differential
 * translation oracle at paranoia >= 2.
 */

#include <gtest/gtest.h>

#include "common/contracts.hh"
#include "common/intmath.hh"
#include "mem/buddy_allocator.hh"
#include "mem/phys_mem.hh"
#include "pt/page_table.hh"
#include "pt/pte.hh"
#include "pt/walker.hh"
#include "sim/machine.hh"
#include "tlb/mix.hh"
#include "workload/generator.hh"

using namespace mixtlb;

namespace mixtlb::tlb
{

/** Backdoor used only here: reach into a set and break an invariant. */
struct MixTlbTestAccess
{
    static void
    shiftAnchor(MixTlb &tlb, unsigned set, std::uint64_t delta)
    {
        tlb.sets_.at(set).payload(0).wpbase += delta;
    }

    static void
    setBitmap(MixTlb &tlb, unsigned set, std::uint64_t bitmap)
    {
        tlb.sets_.at(set).payload(0).bitmap = bitmap;
    }

    static void
    setDirtyFlag(MixTlb &tlb, unsigned set, bool dirty)
    {
        tlb.sets_.at(set).payload(0).dirty = dirty;
    }
};

} // namespace mixtlb::tlb

namespace mixtlb::mem
{

/** Backdoor used only here: plant a bogus block on a free list. */
struct BuddyTestAccess
{
    static void
    injectFreeBlock(BuddyAllocator &buddy, Pfn pfn, unsigned order)
    {
        buddy.freeLists_.at(order).insert(pfn);
    }
};

} // namespace mixtlb::mem

namespace
{

constexpr std::uint64_t MiB = 1024 * 1024;
constexpr std::uint64_t GiB = 1024 * MiB;

/** Scoped paranoia level: the global is reset on test exit. */
struct ParanoiaGuard
{
    explicit ParanoiaGuard(unsigned level)
    {
        contracts::setParanoia(level);
    }
    ~ParanoiaGuard() { contracts::setParanoia(0); }
};

} // anonymous namespace

TEST(Contracts, ParanoiaLevelRoundTrips)
{
    EXPECT_EQ(contracts::paranoia(), 0u);
    {
        ParanoiaGuard guard(3);
        EXPECT_EQ(contracts::paranoia(), 3u);
    }
    EXPECT_EQ(contracts::paranoia(), 0u);
}

TEST(Contracts, ExpectPassesSilently)
{
    MIX_EXPECT(1 + 1 == 2);
    MIX_EXPECT(true, "never printed %d", 42);
}

TEST(ContractsDeathTest, ExpectViolationExitsWithCode1)
{
    EXPECT_EXIT(MIX_EXPECT(false, "context %d", 7),
                ::testing::ExitedWithCode(1), "contract violation");
}

TEST(Contracts, AuditReportAccumulates)
{
    contracts::AuditReport report("unit");
    EXPECT_TRUE(report.ok());
    report.fail("f.cc", 1, "first broken thing");
    report.fail("f.cc", 2, "second broken thing");
    EXPECT_FALSE(report.ok());
    EXPECT_EQ(report.numViolations(), 2u);
    EXPECT_TRUE(report.mentions("second broken"));
    EXPECT_FALSE(report.mentions("absent"));
    EXPECT_NE(report.summary().find("unit"), std::string::npos);
}

TEST(ContractsDeathTest, EnforceExitsOnViolations)
{
    contracts::AuditReport report("fatal-audit");
    report.fail("f.cc", 3, "irreparable");
    EXPECT_EXIT(contracts::enforce(report),
                ::testing::ExitedWithCode(1), "fatal-audit");
}

TEST(Contracts, EnforceIsSilentWhenClean)
{
    contracts::AuditReport report;
    contracts::enforce(report); // must not exit
}

// ---------------------------------------------------------------------
// The recoverable error tier: SimError / MIX_RAISE / require().

TEST(Contracts, RaiseCarriesKindLocationAndMessage)
{
    try {
        MIX_RAISE("oom", "ran out after %d frames", 512);
        FAIL() << "MIX_RAISE did not throw";
    } catch (const SimError &error) {
        EXPECT_EQ(error.kind(), "oom");
        EXPECT_NE(error.where().find("test_contracts.cc"),
                  std::string::npos);
        std::string what = error.what();
        EXPECT_NE(what.find("oom"), std::string::npos);
        EXPECT_NE(what.find("ran out after 512 frames"),
                  std::string::npos);
    }
}

TEST(Contracts, SimErrorIsARuntimeError)
{
    // runChecked's std::exception fallback must catch SimError
    // subclasses through the standard hierarchy.
    try {
        MIX_RAISE("deadline", "wedged");
        FAIL() << "MIX_RAISE did not throw";
    } catch (const std::runtime_error &error) {
        EXPECT_NE(std::string(error.what()).find("deadline"),
                  std::string::npos);
    }
}

TEST(Contracts, RequireThrowsRecoverablyOnViolations)
{
    contracts::AuditReport report("sweep-audit");
    report.fail("f.cc", 9, "broken invariant");
    try {
        contracts::require(report);
        FAIL() << "require() accepted a failing report";
    } catch (const SimError &error) {
        EXPECT_EQ(error.kind(), "audit");
        EXPECT_NE(std::string(error.what()).find("sweep-audit"),
                  std::string::npos);
        EXPECT_NE(std::string(error.what()).find("broken invariant"),
                  std::string::npos);
    }
}

TEST(Contracts, RequireIsSilentWhenClean)
{
    contracts::AuditReport report;
    contracts::require(report); // must not throw
}

// ---------------------------------------------------------------------
// intmath domain contracts (the old silent-UB cases).

TEST(IntMathDeathTest, FloorLog2OfZeroDies)
{
    std::uint64_t zero = 0;
    EXPECT_EXIT(floorLog2(zero), ::testing::ExitedWithCode(1),
                "floorLog2");
}

TEST(IntMathDeathTest, CeilLog2OfZeroDies)
{
    std::uint64_t zero = 0;
    EXPECT_EXIT(ceilLog2(zero), ::testing::ExitedWithCode(1),
                "ceilLog2");
}

TEST(IntMathDeathTest, DivCeilByZeroDies)
{
    std::uint64_t zero = 0;
    EXPECT_EXIT(divCeil(10, zero), ::testing::ExitedWithCode(1),
                "divCeil");
}

TEST(IntMathDeathTest, AlignToNonPowerOfTwoDies)
{
    std::uint64_t align = 12;
    EXPECT_EXIT(alignDown(100, align), ::testing::ExitedWithCode(1),
                "non-power-of-two");
    EXPECT_EXIT(alignUp(100, align), ::testing::ExitedWithCode(1),
                "non-power-of-two");
    EXPECT_EXIT(alignUp(100, 0), ::testing::ExitedWithCode(1),
                "non-power-of-two");
}

TEST(IntMathDeathTest, InvertedBitRangeDies)
{
    unsigned hi = 3, lo = 9;
    EXPECT_EXIT(bits(0xff, hi, lo), ::testing::ExitedWithCode(1),
                "not a bit range");
    EXPECT_EXIT(insertBits(0, hi, lo, 1),
                ::testing::ExitedWithCode(1), "not a bit range");
    EXPECT_EXIT(bits(0xff, 64, 0), ::testing::ExitedWithCode(1),
                "not a bit range");
}

TEST(IntMath, InDomainValuesStillWork)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(divCeil(10, 3), 4u);
    EXPECT_EQ(alignDown(0x1234, 0x1000), 0x1000u);
    EXPECT_EQ(alignUp(0x1234, 0x1000), 0x2000u);
    EXPECT_EQ(bits(0xabcd, 7, 4), 0xcu);
    EXPECT_EQ(bits(~0ULL, 63, 0), ~0ULL);
    EXPECT_EQ(insertBits(0, 7, 4, 0xf), 0xf0u);
}

// ---------------------------------------------------------------------
// Corruption injection: each auditor must report the invariant its
// subsystem just had broken.

namespace
{

/** Figure 2 substrate for the MixTlb corruption tests. */
struct MixCorruptionFixture : ::testing::Test
{
    mem::PhysMem mem{8 * GiB};
    pt::PageTable table{mem};
    stats::StatGroup root{"test"};
    pt::Walker walker{table, &root};

    static constexpr VAddr B = 0x00400000;
    static constexpr VAddr C = 0x00600000;

    void
    SetUp() override
    {
        table.map(B, 0x00000000, PageSize::Size2M);
        table.map(C, 0x00200000, PageSize::Size2M);
    }

    std::unique_ptr<tlb::MixTlb>
    filledTlb()
    {
        tlb::MixTlbParams params;
        params.entries = 4;
        params.assoc = 2;
        auto tlb = std::make_unique<tlb::MixTlb>("mix", &root, params);
        auto walk = walker.walk(B, false);
        EXPECT_FALSE(walk.pageFault());
        tlb::FillInfo fill;
        fill.leaf = *walk.leaf;
        fill.vaddr = B;
        fill.walk = &walk;
        tlb->fill(fill); // superpage: mirrored into both sets
        return tlb;
    }
};

} // anonymous namespace

TEST_F(MixCorruptionFixture, CleanTlbAuditsClean)
{
    auto tlb = filledTlb();
    contracts::AuditReport report;
    tlb->auditSets(report);
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST_F(MixCorruptionFixture, CorruptMirrorAnchorIsReported)
{
    auto tlb = filledTlb();
    tlb::MixTlbTestAccess::shiftAnchor(*tlb, 1, PageBytes2M);
    contracts::AuditReport report;
    tlb->auditSets(report);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.mentions("mirror disagreement"))
        << report.summary();
}

TEST_F(MixCorruptionFixture, BitmapBitsOutsideWindowAreReported)
{
    auto tlb = filledTlb();
    tlb::MixTlbTestAccess::setBitmap(*tlb, 0, ~0ULL);
    contracts::AuditReport report;
    tlb->auditSets(report);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.mentions("membership bits")) << report.summary();
}

TEST_F(MixCorruptionFixture, StaleDirtyMirrorIsReported)
{
    auto tlb = filledTlb();
    tlb::MixTlbTestAccess::setDirtyFlag(*tlb, 0, true);
    contracts::AuditReport report;
    tlb->auditSets(report);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.mentions("stale dirty mirror"))
        << report.summary();
}

TEST(BuddyAudit, CleanAllocatorAuditsClean)
{
    mem::BuddyAllocator buddy(1024);
    auto a = buddy.alloc(0);
    auto b = buddy.alloc(3);
    ASSERT_TRUE(a && b);
    buddy.free(*a, 0);
    contracts::AuditReport report;
    buddy.audit(report);
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(BuddyAudit, InjectedDoubleFreeBreaksConservation)
{
    mem::BuddyAllocator buddy(1024);
    auto pfn = buddy.alloc(0);
    ASSERT_TRUE(pfn);
    // The frame is allocated, but a corrupt free list claims it too.
    mem::BuddyTestAccess::injectFreeBlock(buddy, *pfn, 0);
    contracts::AuditReport report;
    buddy.audit(report);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.mentions("free lists hold"))
        << report.summary();
}

TEST(BuddyAudit, MisalignedFreeBlockIsReported)
{
    mem::BuddyAllocator buddy(1024);
    auto pfn = buddy.alloc(3); // carve out room for the bogus block
    ASSERT_TRUE(pfn);
    mem::BuddyTestAccess::injectFreeBlock(buddy, *pfn + 1, 1);
    contracts::AuditReport report;
    buddy.audit(report);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.mentions("naturally aligned"))
        << report.summary();
}

TEST(PhysMemAudit, FreeListAndUsageTagDisagreementIsReported)
{
    mem::PhysMem pm(64 * MiB);
    auto pfn = pm.allocFrames(0, mem::FrameUse::AppSmall);
    ASSERT_TRUE(pfn);
    contracts::AuditReport clean;
    pm.audit(clean);
    EXPECT_TRUE(clean.ok()) << clean.summary();

    mem::BuddyTestAccess::injectFreeBlock(pm.buddy(), *pfn, 0);
    contracts::AuditReport report;
    pm.audit(report);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.mentions("tagged")) << report.summary();
}

TEST(PageTableAudit, CleanTableAuditsClean)
{
    mem::PhysMem pm(64 * MiB);
    pt::PageTable table(pm);
    table.map(0x200000, 0x200000, PageSize::Size2M);
    table.map(0x1000, 0x1000, PageSize::Size4K);
    contracts::AuditReport report;
    table.audit(report);
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(PageTableAudit, CorruptLeafAlignmentIsReported)
{
    mem::PhysMem pm(64 * MiB);
    pt::PageTable table(pm);
    table.map(0x200000, 0x200000, PageSize::Size2M);
    auto pte_addr = table.leafPteAddr(0x200000);
    ASSERT_TRUE(pte_addr);
    // Nudge the frame field: the 2MB leaf now points 4KB into a block.
    pm.write64(*pte_addr, pm.read64(*pte_addr) + PageBytes4K);
    contracts::AuditReport report;
    table.audit(report);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.mentions("misaligned")) << report.summary();
}

TEST(PageTableAudit, AliasedSubtreeIsReported)
{
    mem::PhysMem pm(64 * MiB);
    pt::PageTable table(pm);
    table.map(0x1000, 0x1000, PageSize::Size4K);
    // Plant a second root slot pointing back at the root itself.
    pm.write64(table.root() + 8, pt::pte::make(table.root(), {}, false));
    contracts::AuditReport report;
    table.audit(report);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.mentions("reachable twice")) << report.summary();
}

TEST(PageTableAudit, PhantomLeafBreaksMappingCount)
{
    mem::PhysMem pm(64 * MiB);
    pt::PageTable table(pm);
    table.map(0x1000, 0x1000, PageSize::Size4K);
    // Forge a present leaf the table never accounted for, right next
    // to the legitimate one (same leaf-level table, slot 4).
    auto pte_addr = table.leafPteAddr(0x1000);
    ASSERT_TRUE(pte_addr);
    pm.write64(*pte_addr + 8 * 3,
               pt::pte::make(0x8000, {}, false));
    contracts::AuditReport report;
    table.audit(report);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.mentions("numMappings")) << report.summary();
}

// ---------------------------------------------------------------------
// The differential oracle: a paranoia-2 run cross-checks every
// translation against the reference map walk and counts the checks.

TEST(Oracle, NativeMillionAccessAgreement)
{
    ParanoiaGuard guard(2);
    sim::MachineParams params;
    params.memBytes = 1 * GiB;
    params.design = sim::TlbDesign::Mix;
    params.proc.policy = os::PagePolicy::Thp;
    params.seed = 11;
    sim::Machine machine(params);

    const std::uint64_t footprint = 192 * MiB;
    VAddr base = machine.mapArena(footprint);
    machine.warmup(base, footprint);
    auto gen = workload::makeGenerator("graph500", base, footprint, 11);
    const std::uint64_t refs = 1000000;
    EXPECT_EQ(machine.run(*gen, refs), refs);
    // Every access (and every warmup touch) went through the oracle; a
    // single disagreement would have exited fatally above.
    EXPECT_GE(machine.tlbs().oracleCheckCount(),
              static_cast<double>(refs));
}

TEST(Oracle, NestedTranslationAgreement)
{
    ParanoiaGuard guard(2);
    sim::VirtMachineParams params;
    params.hostMemBytes = 512 * MiB;
    params.numVms = 1;
    params.design = sim::TlbDesign::Mix;
    params.seed = 13;
    sim::VirtMachine machine(params);

    const std::uint64_t footprint = 64 * MiB;
    VAddr base = machine.mapArena(0, footprint);
    machine.warmup(0, base, footprint);
    auto gen = workload::makeGenerator("memcached", base, footprint, 13);
    const std::uint64_t refs = 100000;
    EXPECT_EQ(machine.run(0, *gen, refs), refs);
}

TEST(Oracle, CountsNothingAtLowParanoia)
{
    sim::MachineParams params;
    params.memBytes = 256 * MiB;
    params.design = sim::TlbDesign::Split;
    sim::Machine machine(params);
    VAddr base = machine.mapArena(16 * MiB);
    machine.warmup(base, 16 * MiB);
    EXPECT_EQ(machine.tlbs().oracleCheckCount(), 0.0);
}
