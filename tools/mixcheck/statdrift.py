"""stat-name drift checker.

The Python validators (tools/check_perf.py, tools/check_soak.py) gate
CI on stat names like "l1_miss_rate" and "thp_fallbacks" that C++ code
registers as string literals. Renaming a stat on one side silently
turns the validator into a no-op (a `.get(..., 0)` default) or a hard
KeyError. This checker cross-references every consumed name -- Python
`["metrics"][NAME]` / `.get("metrics").get(NAME)` chains and C++
dotted `.scalar("a.b")` / `.counter(...)` / `.value(...)` reads --
against the set of registered producer names, and fails on consumers
of names no producer registers.
"""

import ast
import re
from pathlib import Path
from source import Finding

PRODUCER_RE = re.compile(
    r"\badd(?:Counter|Scalar|Formula|Distribution|Stat)\s*\(\s*\"([^\"]+)\"")
CPP_CONSUMER_RE = re.compile(
    r"[.>]\s*(?:scalar|counter|value|formula|distribution)\s*\(\s*"
    r"\"([^\"]+)\"")

PY_VALIDATORS = ("tools/check_perf.py", "tools/check_soak.py")


def producers(sources):
    """Registered stat names (leaf names) across the C++ tree."""
    names = set()
    for source in sources:
        for match in PRODUCER_RE.finditer(source.text):
            names.add(match.group(1).split(".")[-1])
    return names


def cpp_consumers(sources):
    """[(rel, line, leaf)] for dotted stat reads in C++."""
    out = []
    for source in sources:
        for match in CPP_CONSUMER_RE.finditer(source.text):
            # A literal followed by `+` is a concatenated-name
            # fragment ("proc" + std::to_string(i) + ...); the full
            # name is not statically known, so skip it.
            rest = source.text[match.end():match.end() + 16].lstrip()
            if rest.startswith("+"):
                continue
            line = source.text.count("\n", 0, match.start()) + 1
            out.append((source.rel, line, match.group(1).split(".")[-1]))
    return out


class _MetricsVisitor(ast.NodeVisitor):
    """Find X["metrics"][KEY] subscripts and
    X.get("metrics", ...).get(KEY, ...) chains."""

    def __init__(self):
        self.consumed = []  # (line, key)

    @staticmethod
    def _const_str(node):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return None

    def visit_Subscript(self, node):
        key = self._const_str(node.slice)
        if key is not None and isinstance(node.value, ast.Subscript):
            inner = self._const_str(node.value.slice)
            if inner == "metrics":
                self.consumed.append((node.lineno, key))
        self.generic_visit(node)

    def visit_Call(self, node):
        if isinstance(node.func, ast.Attribute) and node.func.attr == "get" \
                and node.args:
            key = self._const_str(node.args[0])
            base = node.func.value
            if key is not None and isinstance(base, ast.Call) \
                    and isinstance(base.func, ast.Attribute) \
                    and base.func.attr == "get" and base.args:
                inner = self._const_str(base.args[0])
                if inner == "metrics":
                    self.consumed.append((node.lineno, key))
        self.generic_visit(node)


def py_consumers(root):
    """[(rel, line, key)] from the Python validators."""
    out = []
    for rel in PY_VALIDATORS:
        path = Path(root) / rel
        if not path.is_file():
            continue
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError:
            continue
        visitor = _MetricsVisitor()
        visitor.visit(tree)
        for line, key in visitor.consumed:
            out.append((rel, line, key))
    return out


def check(sources, root):
    names = producers(sources)
    findings = []
    if not names:
        return findings  # nothing registered: a fixture tree w/o stats
    for rel, line, leaf in cpp_consumers(sources):
        if leaf not in names:
            findings.append(Finding(
                rel, line, "stat-drift",
                f"dotted stat read '{leaf}' has no producer: no "
                "addCounter/addScalar/addFormula/addDistribution "
                "registers that name"))
    for rel, line, key in py_consumers(root):
        if key not in names:
            findings.append(Finding(
                rel, line, "stat-drift",
                f"validator consumes metrics key '{key}' but no C++ "
                "producer registers a stat of that name"))
    return findings
