"""Source model: files, findings, suppressions, repo-wide tables."""

import re
from collections import namedtuple
from pathlib import Path

from tokenizer import mark_template_brackets, strip_code, tokenize

Finding = namedtuple("Finding", ["file", "line", "rule", "message"])

# // mixcheck: allow(<rule>) -- <reason>   (reason mandatory)
SUPPRESS_RE = re.compile(
    r"//\s*mixcheck:\s*allow\(([\w-]+)\)(?:\s*--\s*(\S.*\S|\S))?")
HOT_RE = re.compile(r"//\s*mixcheck:\s*hot\b")
# Sanctioned SoA tag-lane scan (TagLaneSet and deliberate reference
# fallbacks): a linear entry scan within 3 lines below this marker is
# exempt from the hot-path-scan rule.
SOA_RE = re.compile(r"//\s*mixcheck:\s*soa-scan\b")

# Repo-wide constexpr integer constants: `constexpr ... Name = <expr>;`
# The RHS may reference other constants (Order2M = PageShift2M -
# PageShift4K); RepoTables.finalize() folds those iteratively.
CONSTEXPR_RE = re.compile(
    r"constexpr\s+[\w:<>\s]*?\b([A-Za-z_]\w*)\s*=\s*([^;{}]+);")
# enum { Name = <int>, ... } and `enum class E { A, B }` are handled by
# a looser scan of `Name = <int>` inside enum bodies.
ENUM_RE = re.compile(r"\benum\b[^{;]*\{([^}]*)\}", re.S)
ENUMERATOR_RE = re.compile(r"\b([A-Za-z_]\w*)\s*=\s*"
                           r"(0[xX][0-9a-fA-F]+|\d+)\b")

# Container declarations (members, locals, params). Maps a declared
# name to the container family so the hot-path checker can tell an
# InlineVec receiver from a std::vector one.
CONTAINER_DECL_RE = re.compile(
    r"\b(InlineVec|std::vector|std::list|std::deque|std::string\b"
    r"|std::array|std::span|std::basic_string)\s*"
    r"(?:<[^;{}()]*?>)?\s*(?:[&*]\s*)?([A-Za-z_]\w*)\s*[;={,)\[]")

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s*"
    r"([A-Za-z_]\w*)\s*[;={(]")


class SourceFile:
    """One parsed C++ source file plus its lazy token stream."""

    def __init__(self, path, root):
        self.path = Path(path)
        self.root = Path(root)
        self.rel = str(self.path.relative_to(self.root))
        self.text = self.path.read_text(encoding="utf-8", errors="replace")
        self.stripped = strip_code(self.text)
        self.lines = self.text.splitlines()
        self.stripped_lines = self.stripped.splitlines()
        self._tokens = None
        self._template_brackets = None
        self.suppressions = {}  # line -> (rule, has_reason)
        self.hot_lines = []
        self.soa_scan_lines = set()
        for lineno, line in enumerate(self.lines, 1):
            match = SUPPRESS_RE.search(line)
            if match:
                self.suppressions[lineno] = (match.group(1),
                                             bool(match.group(2)))
            if HOT_RE.search(line):
                self.hot_lines.append(lineno)
            if SOA_RE.search(line):
                self.soa_scan_lines.add(lineno)

    @property
    def tokens(self):
        if self._tokens is None:
            self._tokens = tokenize(self.stripped)
        return self._tokens

    @property
    def template_brackets(self):
        if self._template_brackets is None:
            self._template_brackets = mark_template_brackets(self.tokens)
        return self._template_brackets

    def finding(self, line, rule, message):
        return Finding(self.rel, line, rule, message)


_NUM_SUFFIX_RE = re.compile(r"\b(0[xX][0-9a-fA-F']+|\d[\d']*)[uUlL]+")
_IDENT_RE = re.compile(r"[A-Za-z_]\w*(?:\s*::\s*[A-Za-z_]\w*)*")


def eval_const_expr(text, constants):
    """Evaluate an integer constant expression, resolving identifiers
    via `constants` (qualified names resolve by last component).
    Returns the value or None."""
    unresolved = []

    def replace(match):
        name = match.group(0).split("::")[-1].strip()
        value = constants.get(name)
        if value is None:
            unresolved.append(name)
            return match.group(0)
        return str(value)

    expr = _IDENT_RE.sub(replace, text)
    if unresolved:
        return None
    expr = _NUM_SUFFIX_RE.sub(r"\1", expr).replace("'", "")
    # Only arithmetic/bit operators may remain; lone </> (comparisons)
    # are rejected.
    if re.search(r"[^0-9xXa-fA-F\s()+\-*/%&|^~<>]", expr):
        return None
    if re.search(r"(?<!<)<(?!<)|(?<!>)>(?!>)", expr):
        return None
    try:
        value = eval(expr, {"__builtins__": {}})  # arithmetic only
    except (SyntaxError, ZeroDivisionError, TypeError, ValueError,
            MemoryError, OverflowError):
        return None
    return value if isinstance(value, int) else None


class RepoTables:
    """Cross-file fact tables shared by the checkers."""

    def __init__(self):
        self.constants = {}   # name -> int value (constexpr + enums)
        self.containers = {}  # name -> set of container families
        self.unordered = set()
        self._pending = []    # (name, rhs text) awaiting folding

    def finalize(self):
        """Fold constexpr right-hand sides that reference other
        constants; a few passes handle chains."""
        for _ in range(5):
            remaining = []
            for name, rhs in self._pending:
                value = eval_const_expr(rhs, self.constants)
                if value is not None:
                    self.constants[name] = value
                else:
                    remaining.append((name, rhs))
            if len(remaining) == len(self._pending):
                break
            self._pending = remaining

    def ingest(self, source):
        for match in CONSTEXPR_RE.finditer(source.stripped):
            value = eval_const_expr(match.group(2), self.constants)
            if value is not None:
                self.constants[match.group(1)] = value
            else:
                self._pending.append((match.group(1), match.group(2)))
        for enum_match in ENUM_RE.finditer(source.stripped):
            for match in ENUMERATOR_RE.finditer(enum_match.group(1)):
                try:
                    self.constants[match.group(1)] = int(match.group(2), 0)
                except ValueError:
                    pass
        for match in CONTAINER_DECL_RE.finditer(source.stripped):
            family, name = match.group(1), match.group(2)
            self.containers.setdefault(name, set()).add(family)
        for match in UNORDERED_DECL_RE.finditer(source.stripped):
            self.unordered.add(match.group(1))


def apply_suppressions(source, findings):
    """Split findings into (kept, suppressed) honouring allow()
    comments on the finding's own line or the line above. A suppression
    without a reason never suppresses and raises its own finding."""
    kept, suppressed = [], []
    for finding in findings:
        hit = None
        for lineno in (finding.line, finding.line - 1):
            entry = source.suppressions.get(lineno)
            if entry and entry[0] == finding.rule and entry[1]:
                hit = lineno
                break
        (suppressed if hit else kept).append(finding)
    return kept, suppressed


def suppression_findings(source):
    """Findings for malformed suppressions (missing reason)."""
    out = []
    for lineno, (rule, has_reason) in sorted(source.suppressions.items()):
        if not has_reason:
            out.append(source.finding(
                lineno, "suppression",
                f"mixcheck: allow({rule}) has no '-- <reason>'; a "
                "written reason is mandatory"))
    return out
