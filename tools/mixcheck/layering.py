"""layering checker.

Enforces the module DAG
    common -> {mem, pt, cache, perf} -> {tlb, os, virt} -> workload
           -> {sim, gpu} -> bench/tests/examples
by include-graph extraction: a module may include same-rank or
lower-rank modules only, and the file-level include graph must stay
acyclic. Upward includes are how layering rots -- one "just this once"
include of sim/ from tlb/ makes every future test drag the whole
simulator in.
"""

import re
from pathlib import Path

INCLUDE_RE = re.compile(r'^[ \t]*(#)\s*include\s*"([^"]+)"', re.M)

RANKS = {
    "common": 0,
    "mem": 1, "pt": 1, "cache": 1, "perf": 1,
    "tlb": 2, "os": 2, "virt": 2,
    "workload": 3,
    "sim": 4, "gpu": 4,
    "bench": 5, "tests": 5, "examples": 5, "tools": 5,
}


def module_of(rel):
    parts = Path(rel).parts
    if parts[0] == "src" and len(parts) > 1:
        return parts[1]
    return parts[0]


def _resolve(source, include):
    """Resolve an include string to a repo-relative path."""
    if "/" in include:
        candidate = Path("src") / include
        if (source.root / candidate).is_file():
            return str(candidate)
        candidate = Path(source.rel).parent / include
        if (source.root / candidate).is_file():
            return str(candidate)
        return None
    candidate = Path(source.rel).parent / include
    if (source.root / candidate).is_file():
        return str(candidate)
    return None


def collect_includes(source):
    """[(line, include_text, resolved_rel_or_None)]

    Matched against the raw text: strip_code() blanks string-literal
    contents, which would erase the include path. A match whose `#` did
    not survive stripping sits inside a comment and is discarded
    (strip_code is width-preserving, so offsets line up)."""
    out = []
    for match in INCLUDE_RE.finditer(source.text):
        if source.stripped[match.start(1)] != "#":
            continue
        line = source.text.count("\n", 0, match.start()) + 1
        out.append((line, match.group(2), _resolve(source, match.group(2))))
    return out


def check(sources):
    """Run over the whole file set; returns findings plus the include
    graph used for cycle detection."""
    findings = []
    graph = {}
    by_rel = {s.rel: s for s in sources}
    for source in sources:
        includer_mod = module_of(source.rel)
        includer_rank = RANKS.get(includer_mod)
        edges = []
        for line, text, resolved in collect_includes(source):
            if resolved is None:
                continue
            if resolved in by_rel:
                edges.append(resolved)
            target_mod = module_of(resolved)
            target_rank = RANKS.get(target_mod)
            if includer_rank is None or target_rank is None:
                continue
            if target_rank > includer_rank:
                findings.append(source.finding(
                    line, "layering",
                    f"upward include: {includer_mod}/ (rank "
                    f"{includer_rank}) must not include '{text}' from "
                    f"{target_mod}/ (rank {target_rank}); invert the "
                    "dependency or move the shared type down"))
        graph[source.rel] = edges

    # File-level cycle detection (DFS, white/grey/black).
    state = {}
    stack = []

    def visit(node):
        state[node] = 1
        stack.append(node)
        for nxt in graph.get(node, ()):
            mark = state.get(nxt, 0)
            if mark == 1:
                cycle = stack[stack.index(nxt):] + [nxt]
                src = by_rel[node]
                findings.append(src.finding(
                    1, "layering",
                    "include cycle: " + " -> ".join(cycle)))
            elif mark == 0:
                visit(nxt)
        stack.pop()
        state[node] = 2

    for rel in sorted(graph):
        if state.get(rel, 0) == 0:
            visit(rel)
    return findings
