"""shift-width checker.

Flags `<<`/`>>` where the left operand is a plain int literal (the
`1 << 22` class: promotes to 32-bit int, UB past bit 30) or where the
shift amount is not provably below the operand width (the COLT
`colt4k > 64` and SkewTlb `4 + 3*way >= 64` class). Sanctioned fixes:
a 64-bit-suffixed literal, a `& 63`-style inline mask on the amount, a
compile-time constant amount, or the guarded helpers in
common/intmath.hh (pow2 / shiftLeft / shiftRight), whose implementation
file is the one place raw unproven shifts are allowed.
"""

import re

# Calls whose results are architecturally bounded below 64.
BOUNDED_CALLS = {"floorLog2", "ceilLog2", "levelShift", "pageShift",
                 "countl_zero", "countr_zero"}
# Statements mentioning streams or string literals are formatted
# output, not arithmetic; `<<` there is operator<<.
STREAM_IDS = {"cout", "cerr", "clog", "ostream", "ofstream", "ostringstream",
              "stringstream", "oss", "ss", "os", "out", "stream"}
EXEMPT_FILES = {"src/common/intmath.hh"}

_INT_SUFFIX_RE = re.compile(r"(?:[uU]|[lL]{1,2}|[uU][lL]{1,2}|[lL]{1,2}[uU])$")


def literal_value(text):
    clean = text.replace("'", "")
    clean = _INT_SUFFIX_RE.sub("", clean)
    try:
        return int(clean, 0)
    except ValueError:
        return None


def _statement_span(tokens, index):
    """Token index range (start, end) of the statement containing
    tokens[index], bounded by ; { }."""
    start = index
    while start > 0 and tokens[start - 1].text not in (";", "{", "}"):
        start -= 1
    end = index
    while end < len(tokens) - 1 and tokens[end].text not in (";", "{", "}"):
        end += 1
    return start, end


def _amount_tokens(tokens, index, template):
    """Tokens forming the shift-amount expression after tokens[index]."""
    out = []
    depth = 0
    i = index + 1
    stoppers = {";", ",", "?", ":", "==", "!=", "<=", ">=", "<", ">",
                "&&", "||", "&", "|", "^", "<<", ">>", "{", "}", "="}
    while i < len(tokens):
        tok = tokens[i]
        if tok.text in ("(", "["):
            depth += 1
        elif tok.text in (")", "]"):
            if depth == 0:
                break
            depth -= 1
        elif depth == 0 and tok.kind == "punct" and tok.text in stoppers \
                and i not in template:
            break
        out.append(tok)
        i += 1
    return out


def _strip_wrapper(toks):
    """Peel static_cast<T>(X) wrappers and redundant outer parens."""
    changed = True
    while changed and toks:
        changed = False
        if toks[0].text in ("static_cast", "reinterpret_cast") :
            # static_cast < T > ( inner )
            i = 1
            depth = 0
            while i < len(toks):
                if toks[i].text == "(" and depth == 0:
                    break
                i += 1
            if i < len(toks) and toks[-1].text == ")":
                toks = toks[i + 1:-1]
                changed = True
                continue
        if toks[0].text == "(" and toks[-1].text == ")":
            depth = 0
            balanced = True
            for j, tok in enumerate(toks):
                if tok.text == "(":
                    depth += 1
                elif tok.text == ")":
                    depth -= 1
                    if depth == 0 and j != len(toks) - 1:
                        balanced = False
                        break
            if balanced:
                toks = toks[1:-1]
                changed = True
    return toks


def _amount_provably_below(toks, limit, constants):
    """True when the amount expression is provably < limit."""
    from source import eval_const_expr

    toks = _strip_wrapper(list(toks))
    if not toks:
        return False
    # Constant-foldable expression (literals, constexpr names, enums,
    # arithmetic): evaluate it outright.
    value = eval_const_expr(" ".join(t.text for t in toks), constants)
    if value is not None:
        return 0 <= value < limit
    # Whitelisted bounded call, optionally namespace-qualified:
    # levelShift(...), pt::levelShift(...), std::countl_zero(...).
    call = list(toks)
    while len(call) >= 2 and call[0].kind == "id" and call[1].text == "::":
        call = call[2:]
    if call and call[0].kind == "id" and call[0].text in BOUNDED_CALLS \
            and len(call) >= 3 and call[1].text == "(" \
            and call[-1].text == ")":
        return True
    # Trailing mask: <expr> & LIT with LIT < limit (top level).
    depth = 0
    for j in range(len(toks) - 1, 0, -1):
        text = toks[j].text
        if text in (")", "]"):
            depth += 1
        elif text in ("(", "["):
            depth -= 1
        elif depth == 0 and text == "&" and j + 1 < len(toks):
            nxt = toks[j + 1]
            if nxt.kind == "num":
                value = literal_value(nxt.text)
                if value is not None and value < limit:
                    return True
            if nxt.kind == "id":
                value = constants.get(nxt.text)
                if value is not None and value < limit:
                    return True
            return False
    return False


def _left_operand(tokens, index):
    """Classify the token just left of the shift operator.
    Returns (kind, token) with kind in {literal, expr, none}."""
    i = index - 1
    if i < 0:
        return "none", None
    tok = tokens[i]
    if tok.text in (")", "]"):
        depth = 0
        while i >= 0:
            if tokens[i].text in (")", "]"):
                depth += 1
            elif tokens[i].text in ("(", "["):
                depth -= 1
                if depth == 0:
                    break
            i -= 1
        return "expr", tokens[max(i, 0)]
    if tok.kind == "num":
        return "literal", tok
    if tok.kind == "id" or tok.text == '"':
        return "expr", tok
    return "none", tok


def check(source, tables):
    if source.rel in EXEMPT_FILES:
        return []
    findings = []
    tokens = source.tokens
    template = source.template_brackets
    for i, tok in enumerate(tokens):
        if tok.kind != "punct" or tok.text not in ("<<", ">>"):
            continue
        if i in template:
            continue
        prev = tokens[i - 1] if i > 0 else None
        if prev is not None and prev.text == "operator":
            continue
        start, end = _statement_span(tokens, i)
        span = tokens[start:end + 1]
        if any(t.text == '"' for t in span) or \
                any(t.kind == "id" and t.text in STREAM_IDS for t in span):
            continue  # formatted output, not arithmetic

        kind, left = _left_operand(tokens, i)
        if kind == "none":
            continue

        limit = 64
        line_text = source.stripped_lines[tok.line - 1] \
            if tok.line - 1 < len(source.stripped_lines) else ""
        stmt_text = " ".join(t.text for t in span)
        if "__uint128_t" in stmt_text or "__uint128_t" in line_text:
            limit = 128

        if kind == "literal":
            match = re.match(r"^(.*?)([uUlL]*)$", left.text)
            tail = match.group(2).lower()
            has_l = "l" in tail
            has_u = "u" in tail
            if tok.text == "<<" and not has_l:
                if not has_u:
                    findings.append(source.finding(
                        tok.line, "shift-width",
                        f"int literal {left.text} shifted left: promotes "
                        "to 32-bit int (UB past bit 30); use a ULL "
                        "suffix or mixtlb::pow2()"))
                    continue
                limit = min(limit, 32)

        amount = _amount_tokens(tokens, i, template)
        if not _amount_provably_below(amount, limit, tables.constants):
            amount_text = " ".join(t.text for t in amount) or "<empty>"
            findings.append(source.finding(
                tok.line, "shift-width",
                f"shift amount '{amount_text}' is not provably < "
                f"{limit}: mask it (e.g. '& {limit - 1}') or use the "
                "guarded common/intmath.hh helpers"))
    return findings
