"""determinism checker.

The sweep contract is `--jobs 1 == --jobs N` and byte-identical JSON
reports across runs. Hash-order iteration that feeds stats
registration, JSON/audit output, or fill/invalidate paths breaks that
silently (the PR 2 audit reports originally depended on
std::unordered_set layout). Also bans wall-clock time(),
std::random_device, and pointer-keyed ordered containers (pointer
order varies run to run).
"""

import re

# A range-for body containing any of these flows iteration order into
# observable output or simulated state.
SINKS = ("MIX_AUDIT_CHECK", "addScalar", "addCounter", "addFormula",
         "addDistribution", ".fail(", "report.fail", "fill(", "->fill",
         "invalidate", "dump(", "writeFile", "Json", "json")

TIME_RE = re.compile(r"(?<![\w.:>])time\s*\(")
RANDOM_DEVICE_RE = re.compile(r"std\s*::\s*random_device")
PTR_KEYED_RE = re.compile(r"std::(?:map|set|multimap|multiset)\s*<"
                          r"\s*(?:const\s+)?[\w:]+\s*\*")


def _body_span(tokens, close_paren):
    """Token range of the loop body following the range-for's `)`."""
    i = close_paren + 1
    if i >= len(tokens):
        return i, i
    if tokens[i].text == "{":
        depth = 0
        j = i
        while j < len(tokens):
            if tokens[j].text == "{":
                depth += 1
            elif tokens[j].text == "}":
                depth -= 1
                if depth == 0:
                    return i, j
            j += 1
        return i, len(tokens) - 1
    j = i
    while j < len(tokens) and tokens[j].text != ";":
        j += 1
    return i, j


def check(source, tables):
    findings = []
    tokens = source.tokens
    text = source.stripped

    # Per-file unordered declarations (locals) on top of the repo table.
    unordered = set(tables.unordered)

    i = 0
    while i < len(tokens):
        tok = tokens[i]
        if tok.kind == "id" and tok.text == "for" \
                and i + 1 < len(tokens) and tokens[i + 1].text == "(":
            # Find the `:` of a range-for at paren depth 1, then the
            # closing paren.
            depth = 0
            colon = close = None
            j = i + 1
            while j < len(tokens):
                if tokens[j].text == "(":
                    depth += 1
                elif tokens[j].text == ")":
                    depth -= 1
                    if depth == 0:
                        close = j
                        break
                elif tokens[j].text == ":" and depth == 1 and colon is None:
                    prev = tokens[j - 1].text
                    if prev != ":" and (j + 1 >= len(tokens)
                                        or tokens[j + 1].text != ":"):
                        colon = j
                j += 1
            if colon is not None and close is not None:
                range_ids = [t for t in tokens[colon + 1:close]
                             if t.kind == "id"]
                range_name = range_ids[-1].text if range_ids else None
                if range_name in unordered:
                    lo, hi = _body_span(tokens, close)
                    body = " ".join(t.text for t in tokens[lo:hi + 1])
                    sink = None
                    for s in SINKS:
                        name = s.strip(".->(")
                        if re.search(r"\b" + re.escape(name), body):
                            sink = name
                            break
                    if sink:
                        findings.append(source.finding(
                            tok.line, "determinism",
                            f"iteration over unordered container "
                            f"'{range_name}' flows into '{sink}': "
                            "hash order is not deterministic across "
                            "libstdc++ versions; iterate a sorted "
                            "copy of the keys"))
            i = close if close is not None else i + 1
            continue
        i += 1

    for lineno, line in enumerate(source.stripped_lines, 1):
        if TIME_RE.search(line):
            findings.append(source.finding(
                lineno, "determinism",
                "time() breaks run-to-run reproducibility; derive "
                "timestamps from the seed or pass them in"))
        if RANDOM_DEVICE_RE.search(line):
            findings.append(source.finding(
                lineno, "determinism",
                "std::random_device is nondeterministic; use the "
                "seeded common/random.hh Rng"))
        if PTR_KEYED_RE.search(line):
            findings.append(source.finding(
                lineno, "determinism",
                "pointer-keyed ordered container: pointer order "
                "varies run to run; key on a stable id instead"))
    return findings
