"""hot-path-alloc checker.

Functions annotated `// mixcheck: hot` must stay allocation-free: PR 4
moved the whole translate path off the heap, and PR 5 found a
per-lookup std::vector that crept back into SkewTlb::lookup anyway.
The checker walks the annotated function's body -- and, transitively,
every same-file / companion-header function it calls -- and flags
`new`, make_unique/make_shared, push_back/emplace on anything not
declared as an InlineVec (or other fixed-capacity type), and local
construction of std::vector / std::list / std::deque / std::string.

std::vector::insert on a reserved set (the sanctioned MRU pattern from
set_assoc.cc) is deliberately allowed: capacity is reserved at
construction, so steady-state inserts never allocate.

The hot-path-scan rule (PR 9) additionally flags linear `std::find_if`
entry scans inside hot functions: the repo's probe loops moved to
TagLaneSet's packed tag lanes, so a find_if over full entry structs on
the hot path is either a regression or an unconverted design. The
sanctioned scans — TagLaneSet's own lanes, or a deliberate reference
fallback — are annotated `// mixcheck: soa-scan` within the 3 lines
above the scan, which exempts them.
"""

import re

KEYWORDS = {"if", "while", "for", "switch", "return", "sizeof", "alignof",
            "catch", "do", "else", "case", "default", "new", "delete",
            "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast",
            "decltype", "noexcept", "throw", "alignas", "assert",
            "static_assert", "defined"}

BANNED_CALLS = {"make_unique", "make_shared", "malloc", "calloc",
                "realloc", "strdup", "to_string"}
GROWTH_CALLS = {"push_back", "emplace_back", "push_front", "emplace_front"}
HEAP_CONTAINERS = {"vector", "list", "deque", "string", "ostringstream",
                   "stringstream", "basic_string"}
SAFE_FAMILIES = {"InlineVec", "std::array", "std::span"}


def find_definitions(source):
    """Map function simple-name -> list of (name_token, body_lo, body_hi)
    using brace matching after a parameter list."""
    defs = {}
    tokens = source.tokens
    i = 0
    n = len(tokens)
    while i < n - 1:
        tok = tokens[i]
        if tok.kind != "id" or tok.text in KEYWORDS \
                or tokens[i + 1].text != "(":
            i += 1
            continue
        # Match the parameter list.
        depth = 0
        j = i + 1
        while j < n:
            if tokens[j].text == "(":
                depth += 1
            elif tokens[j].text == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        if j >= n:
            break
        k = j + 1
        # Skip cv-qualifiers / specifiers / ctor init lists.
        while k < n:
            text = tokens[k].text
            if text in ("const", "noexcept", "override", "final",
                        "volatile", "&", "&&"):
                k += 1
            elif text == ":":
                # Constructor initializer list: scan to the body brace.
                depth = 0
                while k < n:
                    if tokens[k].text in ("(", "{") and depth > 0:
                        pass
                    if tokens[k].text == "(":
                        depth += 1
                    elif tokens[k].text == ")":
                        depth -= 1
                    elif tokens[k].text == "{" and depth == 0:
                        break
                    k += 1
            else:
                break
        if k < n and tokens[k].text == "{":
            depth = 0
            m = k
            while m < n:
                if tokens[m].text == "{":
                    depth += 1
                elif tokens[m].text == "}":
                    depth -= 1
                    if depth == 0:
                        break
                m += 1
            defs.setdefault(tok.text, []).append((tok, k, m))
            i = k + 1
            continue
        i = j + 1
    return defs


def _receiver_name(tokens, dot_index):
    """Identifier naming the receiver of `recv.push_back(...)`."""
    i = dot_index - 1
    if i >= 0 and tokens[i].text in (")", "]"):
        depth = 0
        while i >= 0:
            if tokens[i].text in (")", "]"):
                depth += 1
            elif tokens[i].text in ("(", "["):
                depth -= 1
                if depth == 0:
                    i -= 1
                    break
            i -= 1
    if i >= 0 and tokens[i].kind == "id":
        return tokens[i].text
    return None


def _scan_body(source, tables, defs, lo, hi, func_name, origin,
               findings, visited, depth):
    tokens = source.tokens
    template = source.template_brackets
    i = lo
    while i <= hi:
        tok = tokens[i]
        if tok.kind == "id":
            if tok.text == "new":
                findings.append(source.finding(
                    tok.line, "hot-path-alloc",
                    f"'new' inside hot function {origin} "
                    f"(via {func_name})" if func_name != origin else
                    f"'new' inside hot function {origin}"))
            elif tok.text in BANNED_CALLS:
                findings.append(source.finding(
                    tok.line, "hot-path-alloc",
                    f"heap-allocating call '{tok.text}' inside hot "
                    f"function {origin}"))
            elif tok.text in GROWTH_CALLS and i > 0 \
                    and tokens[i - 1].text in (".", "->"):
                recv = _receiver_name(tokens, i - 1)
                families = tables.containers.get(recv, set()) if recv \
                    else set()
                if not families or not families <= SAFE_FAMILIES:
                    shown = "/".join(sorted(families)) or "unknown type"
                    findings.append(source.finding(
                        tok.line, "hot-path-alloc",
                        f"{tok.text} on '{recv}' ({shown}) inside hot "
                        f"function {origin}: only fixed-capacity "
                        "containers (InlineVec) may grow on the hot "
                        "path"))
            elif tok.text == "find_if" and i + 1 <= hi \
                    and tokens[i + 1].text == "(":
                sanctioned = any(
                    line in source.soa_scan_lines
                    for line in range(tok.line - 3, tok.line + 1))
                if not sanctioned:
                    findings.append(source.finding(
                        tok.line, "hot-path-scan",
                        f"linear find_if entry scan inside hot "
                        f"function {origin}: probe through a "
                        "TagLaneSet tag lane, or annotate a "
                        "deliberate reference scan with "
                        "'// mixcheck: soa-scan'"))
            elif tok.text in HEAP_CONTAINERS and i >= 2 \
                    and tokens[i - 1].text == "::" \
                    and tokens[i - 2].text == "std":
                findings.append(source.finding(
                    tok.line, "hot-path-alloc",
                    f"std::{tok.text} constructed/named inside hot "
                    f"function {origin}: use InlineVec or "
                    "preallocated members"))
            elif i + 1 <= hi and tokens[i + 1].text == "(" \
                    and tok.text in defs and depth < 4:
                key = (tok.text, origin)
                if key not in visited and tok.text not in KEYWORDS:
                    visited.add(key)
                    for _, blo, bhi in defs[tok.text]:
                        if blo <= i <= bhi:
                            continue  # recursion into self span
                        _scan_body(source, tables, defs, blo + 1, bhi - 1,
                                   tok.text, origin, findings, visited,
                                   depth + 1)
        i += 1


def check(source, tables, companion=None):
    """Check one file. `companion` is the same-stem header whose inline
    methods count as local callees of a .cc file's hot functions."""
    if not source.hot_lines:
        return []
    findings = []
    defs = find_definitions(source)
    comp_defs = find_definitions(companion) if companion else {}

    for hot_line in source.hot_lines:
        target = None
        for name, instances in defs.items():
            for name_tok, blo, bhi in instances:
                if hot_line < name_tok.line <= hot_line + 6:
                    if target is None or name_tok.line < target[1].line:
                        target = (name, name_tok, blo, bhi)
        if target is None:
            findings.append(source.finding(
                hot_line, "hot-path-alloc",
                "mixcheck: hot annotation is not followed by a "
                "function definition"))
            continue
        name, _, blo, bhi = target
        visited = set()
        _scan_body(source, tables, defs, blo + 1, bhi - 1, name, name,
                   findings, visited, 0)
        # Follow calls into the companion header's inline definitions.
        if companion is not None:
            body_calls = {t.text for idx, t in
                          enumerate(source.tokens[blo + 1:bhi])
                          if t.kind == "id"
                          and blo + 2 + idx < len(source.tokens)
                          and source.tokens[blo + 2 + idx].text == "("}
            for callee in sorted(body_calls & set(comp_defs)):
                for _, clo, chi in comp_defs[callee]:
                    _scan_body(companion, tables, comp_defs, clo + 1,
                               chi - 1, callee, name, findings, set(), 1)
    return findings
