"""Comment/string stripping and tokenization for mixcheck.

The stripper blanks comments and the *contents* of string/char
literals while preserving line structure (so findings keep their line
numbers) and the quote delimiters themselves (so the tokenizer can see
where a string literal sat -- stream-output detection needs that).

The tokenizer produces (kind, text, line) tuples and runs a prepass
that marks which `<`/`>`/`>>` tokens are template brackets rather than
comparisons or shifts, so the shift checker never mistakes
`std::vector<std::list<Entry>>` for a right shift.
"""

import re
from collections import namedtuple

Token = namedtuple("Token", ["kind", "text", "line", "index"])

# Multi-character operators first so the regex is longest-match.
_TOKEN_RE = re.compile(
    r"""
    (?P<id>[A-Za-z_]\w*)
  | (?P<num>
        0[xX][0-9a-fA-F']+[uUlL]*
      | 0[bB][01']+[uUlL]*
      | \d[\d']*(?:\.\d+)?(?:[eE][-+]?\d+)?[uUlLfF]*
    )
  | (?P<str>["'])
  | (?P<punct>
        <<=|>>=|<=>|->\*|\.\.\.
      | <<|>>|::|->|\+\+|--|&&|\|\||==|!=|<=|>=|\+=|-=|\*=|/=|%=|&=|\|=|\^=
      | [-+*/%&|^~!<>=?:;,.(){}\[\]\#]
    )
    """,
    re.VERBOSE,
)

# Identifiers that open a template argument list when followed by `<`.
# Cast keywords are included: static_cast<...> contains a `>` closer.
TEMPLATE_NAMES = {
    "vector", "list", "map", "set", "multimap", "multiset", "deque",
    "array", "span", "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset", "unique_ptr", "shared_ptr", "weak_ptr",
    "function", "optional", "variant", "pair", "tuple", "atomic",
    "initializer_list", "numeric_limits", "basic_string", "string_view",
    "chrono", "duration", "integral_constant", "is_same", "is_same_v",
    "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast",
    "duration_cast", "make_unique", "make_shared", "get", "declval",
    "InlineVec",
}


def strip_code(text):
    """Blank // and /* */ comments and literal contents, preserving
    line structure and quote delimiters."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | dq | sq
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "dq"
                out.append('"')
                i += 1
                continue
            if c == "'":
                # Digit separators (1'000'000) are part of numeric
                # literals, not char literals.
                prev = text[i - 1] if i > 0 else ""
                if prev.isdigit() or (prev.isalpha() and i >= 2
                                      and text[i - 2] == "'"):
                    out.append(c)
                    i += 1
                    continue
                state = "sq"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # dq / sq
            quote = '"' if state == "dq" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            elif c == "\n":
                out.append("\n")  # unterminated; resync
                state = "code"
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def tokenize(stripped):
    """Tokenize stripped code into Token tuples."""
    tokens = []
    line = 1
    pos = 0
    for match in _TOKEN_RE.finditer(stripped):
        line += stripped.count("\n", pos, match.start())
        pos = match.start()
        kind = match.lastgroup
        tokens.append(Token(kind, match.group(), line, len(tokens)))
    return tokens


def mark_template_brackets(tokens):
    """Return a set of token indices that are template angle brackets.

    Heuristic: `<` after a known template name (or any `A::B` chain
    ending in one) opens an angle context; `>` closes one level and
    `>>` closes two. Angle contexts die at `;`, `{` or `)` imbalance,
    which keeps comparisons like `a < b` from poisoning the stream.
    """
    marked = set()
    depth = 0
    open_stack = []
    for i, tok in enumerate(tokens):
        if tok.kind == "punct" and tok.text == "<":
            prev = tokens[i - 1] if i > 0 else None
            if prev is not None and prev.kind == "id" and (
                    prev.text in TEMPLATE_NAMES or prev.text == "template"):
                depth += 1
                open_stack.append(i)
                marked.add(i)
                continue
        if depth == 0:
            continue
        if tok.kind == "punct":
            if tok.text == "<":
                # Nested template of an unknown name, e.g.
                # std::vector<Foo<Bar>>: treat any `<` directly after
                # an identifier while inside an angle context as a
                # nested opener.
                prev = tokens[i - 1] if i > 0 else None
                if prev is not None and prev.kind == "id":
                    depth += 1
                    open_stack.append(i)
                    marked.add(i)
            elif tok.text == ">":
                depth -= 1
                marked.add(i)
                if open_stack:
                    open_stack.pop()
            elif tok.text == ">>":
                marked.add(i)
                levels = min(2, depth)
                depth -= levels
                for _ in range(levels):
                    if open_stack:
                        open_stack.pop()
            elif tok.text in (";", "{"):
                # A statement ended with angle levels still open: the
                # `<` tokens were comparisons after all. Unmark them.
                for j in open_stack:
                    marked.discard(j)
                open_stack.clear()
                depth = 0
    for j in open_stack:
        marked.discard(j)
    return marked
