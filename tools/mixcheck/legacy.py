"""The three original tools/lint.py rules, ported as mixcheck checkers.

  raw-assert      no raw assert( / #include <cassert>; contracts
                  (MIX_EXPECT / MIX_AUDIT) are the only sanctioned
                  invariant checks -- assert() vanishes under NDEBUG
                  and its message carries no context.
  include-guard   src/ headers guard with MIXTLB_<DIR>_<NAME>_HH so
                  guards never collide as directories grow.
  banned-random   no std::rand/srand/rand(): sweeps must be seeded and
                  deterministic (--jobs 1 == --jobs N); use
                  common/random.hh.
"""

import re
from pathlib import Path

RAW_ASSERT = re.compile(r"(?<![\w_])assert\s*\(")
STATIC_ASSERT = re.compile(r"static_assert\s*\(")
CASSERT = re.compile(r'#\s*include\s*[<"](cassert|assert\.h)[>"]')
BANNED_RANDOM = re.compile(r"(?<![\w_.:])(std::)?s?rand\s*\(")
GUARD = re.compile(r"#ifndef\s+(\S+)")


def expected_guard(rel):
    parts = Path(rel).parts
    assert parts[0] == "src"
    stem = Path(parts[-1]).stem
    pieces = list(parts[1:-1]) + [stem]
    return "MIXTLB_" + "_".join(p.upper().replace("-", "_")
                                for p in pieces) + "_HH"


def check(source):
    findings = []
    for lineno, line in enumerate(source.stripped_lines, 1):
        for match in RAW_ASSERT.finditer(line):
            before = line[: match.start() + len("assert")]
            if STATIC_ASSERT.search(before + "("):
                continue
            findings.append(source.finding(
                lineno, "raw-assert",
                "use MIX_EXPECT/MIX_AUDIT, not assert()"))
        if CASSERT.search(line):
            findings.append(source.finding(
                lineno, "raw-assert",
                "do not include <cassert>; use common/contracts.hh"))
        if BANNED_RANDOM.search(line):
            findings.append(source.finding(
                lineno, "banned-random",
                "rand()/srand() breaks sweep determinism; use "
                "common/random.hh"))

    if source.rel.endswith(".hh") and source.rel.startswith("src/"):
        match = GUARD.search(source.stripped)
        want = expected_guard(source.rel)
        if not match:
            findings.append(source.finding(
                1, "include-guard", f"missing include guard {want}"))
        elif match.group(1) != want:
            findings.append(source.finding(
                1, "include-guard",
                f"guard {match.group(1)} should be {want}"))
    return findings
