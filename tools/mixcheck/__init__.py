"""mixcheck: repo-aware static analysis for the Mix TLB simulator.

A tokenizer-based (comment/string-stripping, brace-aware) C++ checker
enforcing the invariants our shipped bugs keep violating. See
DESIGN.md section 10 for the rule catalogue and the bug that motivated
each rule.
"""

VERSION = "1.0.0"
