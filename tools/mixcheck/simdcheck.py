"""simd checker.

SIMD intrinsics are confined to src/common/simd.hh: that header owns
the portable dispatch (AVX2/SSE2/NEON/scalar), the MIXTLB_FORCE_SCALAR
kill switch, and the exactness argument (DESIGN.md section 13). A raw
`_mm256_cmpeq_epi64` sprinkled into a design file silently bypasses
all three — it cannot be forced scalar, it breaks non-x86 builds, and
its first-index semantics are unreviewed. Flag intrinsic includes and
raw intrinsic calls everywhere else; `// mixcheck: allow(simd)` with a
written reason is the escape hatch.
"""

import re

RULE = "simd"
EXEMPT = "src/common/simd.hh"

# Vendor intrinsic headers (x86 per-ISA headers and the umbrella ones,
# plus ARM NEON/SVE). <intrin.h> of MSVC is intentionally included.
INCLUDE_RE = re.compile(
    r'#\s*include\s*[<"]('
    r'[a-z0-9]*intrin\.h'
    r'|arm_neon\.h|arm_sve\.h|arm_acle\.h'
    r')[>"]')

# Raw intrinsic calls: the _mm/_mm256/_mm512 x86 families and the NEON
# v<op>q_<type> / vld1q_/vst1q_ families (call syntax required so a
# comment-stripped identifier in prose does not fire).
INTRINSIC_RE = re.compile(
    r"\b(_mm(?:256|512)?_[a-z0-9_]+"
    r"|v(?:ld|st)\d[a-z0-9_]*q?_[a-z0-9_]+"
    r"|v[a-z]+q?_[usfp](?:8|16|32|64)(?:x\d+)?"
    r")\s*\(")


def check(source):
    """SIMD intrinsics outside the sanctioned kernel header."""
    if source.rel == EXEMPT:
        return []
    out = []
    for lineno, line in enumerate(source.stripped_lines, 1):
        match = INCLUDE_RE.search(line)
        if match:
            out.append(source.finding(
                lineno, RULE,
                f"intrinsic header <{match.group(1)}> outside "
                f"{EXEMPT}; use the simd:: probe kernels"))
            continue
        match = INTRINSIC_RE.search(line)
        if match:
            out.append(source.finding(
                lineno, RULE,
                f"raw intrinsic {match.group(1)}() outside {EXEMPT}; "
                "use the simd:: probe kernels"))
    return out
