"""mixcheck command-line driver.

Usage: python3 tools/mixcheck [--root DIR] [--json FILE]
                              [--baseline FILE] [--write-baseline FILE]
                              [--version] [--require-version X.Y.Z]

Exit codes: 0 clean, 1 findings, 2 usage/setup error.
"""

import argparse
import json
import sys
from pathlib import Path

import determinism
import hotpath
import layering
import legacy
import shift
import simdcheck
import statdrift
from source import (RepoTables, SourceFile, apply_suppressions,
                    suppression_findings)

VERSION = "1.1.0"

CXX_EXTENSIONS = {".hh", ".cc", ".cpp", ".h"}
SCAN_DIRS = ("src", "bench", "examples", "tests", "tools")
STRICT_DIR = "src"  # shift/determinism/hot-path/stat-drift scope
EXCLUDE_PART = "mixcheck_fixtures"


def collect(root):
    files = []
    for top in SCAN_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            # Exclude by root-relative parts so a fixture tree can
            # itself be scanned with --root.
            if path.suffix in CXX_EXTENSIONS and path.is_file() \
                    and EXCLUDE_PART not in path.relative_to(root).parts:
                files.append(path)
    return files


def run(root):
    """Run every checker; returns (findings, suppressed, files_checked)."""
    paths = collect(root)
    sources = [SourceFile(p, root) for p in paths]
    by_rel = {s.rel: s for s in sources}
    src_sources = [s for s in sources if s.rel.startswith(STRICT_DIR + "/")]

    tables = RepoTables()
    for source in src_sources:
        tables.ingest(source)
    tables.finalize()

    raw = []
    for source in src_sources:
        raw.extend(shift.check(source, tables))
        raw.extend(determinism.check(source, tables))
        companion = None
        if source.rel.endswith(".cc"):
            companion = by_rel.get(source.rel[:-3] + ".hh")
        raw.extend(hotpath.check(source, tables, companion))
    raw.extend(layering.check(sources))
    raw.extend(statdrift.check(src_sources
                               + [s for s in sources
                                  if s.rel.startswith("bench/")],
                               root))
    for source in sources:
        raw.extend(legacy.check(source))
        raw.extend(simdcheck.check(source))

    kept, suppressed = [], []
    for source in sources:
        mine = [f for f in raw if f.file == source.rel]
        file_kept, file_supp = apply_suppressions(source, mine)
        kept.extend(file_kept)
        suppressed.extend(file_supp)
        kept.extend(suppression_findings(source))
    # Findings in files outside the scanned set (never happens today,
    # but don't silently drop them if a checker grows).
    rels = set(by_rel)
    kept.extend(f for f in raw if f.file not in rels)

    kept = sorted(set(kept), key=lambda f: (f.file, f.line, f.rule,
                                            f.message))
    suppressed = sorted(set(suppressed),
                        key=lambda f: (f.file, f.line, f.rule))
    return kept, suppressed, len(sources)


def load_baseline(path):
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as err:
        print(f"mixcheck: cannot read baseline {path}: {err}",
              file=sys.stderr)
        sys.exit(2)
    return {(f["file"], f["line"], f["rule"])
            for f in data.get("findings", [])}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="mixcheck",
        description="Repo-aware static analysis for the Mix TLB "
                    "simulator (see DESIGN.md section 10).")
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above "
                             "this package)")
    parser.add_argument("--json", metavar="FILE",
                        help="write machine-readable findings JSON")
    parser.add_argument("--baseline", metavar="FILE",
                        help="known-findings file; only new findings "
                             "fail the run")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write current findings as the baseline "
                             "and exit 0")
    parser.add_argument("--version", action="store_true",
                        help="print the analyzer version and exit")
    parser.add_argument("--require-version", metavar="X.Y.Z",
                        help="fail unless the analyzer version matches "
                             "(pins CI jobs to the same rule set)")
    args = parser.parse_args(argv)

    if args.version:
        print(VERSION)
        return 0
    if args.require_version and args.require_version != VERSION:
        print(f"mixcheck: version {VERSION} does not match required "
              f"{args.require_version}", file=sys.stderr)
        return 2

    root = Path(args.root).resolve() if args.root else \
        Path(__file__).resolve().parent.parent.parent
    if not root.is_dir():
        print(f"mixcheck: root {root} is not a directory", file=sys.stderr)
        return 2

    findings, suppressed, files_checked = run(root)

    baselined = 0
    if args.baseline:
        known = load_baseline(args.baseline)
        new = [f for f in findings
               if (f.file, f.line, f.rule) not in known]
        baselined = len(findings) - len(new)
        findings = new

    if args.write_baseline:
        payload = {
            "version": VERSION,
            "findings": [f._asdict() for f in findings],
        }
        Path(args.write_baseline).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"mixcheck: wrote {len(findings)} finding(s) to "
              f"{args.write_baseline}")
        return 0

    for f in findings:
        print(f"{f.file}:{f.line}: [{f.rule}] {f.message}")
    for f in suppressed:
        print(f"{f.file}:{f.line}: [{f.rule}] suppressed")

    if args.json:
        payload = {
            "version": VERSION,
            "root": str(root),
            "files_checked": files_checked,
            "findings": [f._asdict() for f in findings],
            "suppressed": [f._asdict() for f in suppressed],
            "baselined": baselined,
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n",
                                   encoding="utf-8")

    summary = (f"mixcheck {VERSION}: {files_checked} files, "
               f"{len(findings)} finding(s), {len(suppressed)} "
               f"suppressed, {baselined} baselined")
    print(summary)
    return 1 if findings else 0
