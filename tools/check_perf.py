#!/usr/bin/env python3
"""Validate a hot-path throughput report (CI's perf-smoke job).

`bench_hotpath` self-measures wall-clock refs/sec for a fixed
gups + stream reference mix over every headline TLB design and writes
`BENCH_hotpath.json`. This script proves the report is *usable as a
perf artifact* — it is not a perf regression gate (CI machines vary),
but it fails loudly when the harness silently lost coverage:

  complete     every expected design is present
  measured     every (design, workload) sample carries refs > 0,
               wall_seconds > 0, and refs_per_sec > 0
  coherent     the per-design aggregate refs_per_sec is positive and
               no larger than its fastest workload sample

Usage: tools/check_perf.py <BENCH_hotpath.json>
       (exit 0 clean, 1 otherwise)
"""

import json
import sys

EXPECTED_DESIGNS = ["split", "mix", "mix+colt", "hash-rehash", "skew"]
EXPECTED_WORKLOADS = ["gups", "stream"]


def fail(message: str) -> None:
    print(f"check_perf: FAIL: {message}")
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_perf.py <BENCH_hotpath.json>")
    with open(sys.argv[1], encoding="utf-8") as handle:
        report = json.load(handle)

    designs = report.get("designs", [])
    if not designs:
        fail("report has no designs block")
    by_name = {entry.get("design"): entry for entry in designs}
    missing = [d for d in EXPECTED_DESIGNS if d not in by_name]
    if missing:
        fail(f"missing designs: {', '.join(missing)}")

    for name in EXPECTED_DESIGNS:
        entry = by_name[name]
        workloads = entry.get("workloads", {})
        for workload in EXPECTED_WORKLOADS:
            sample = workloads.get(workload)
            if sample is None:
                fail(f"{name}: missing workload '{workload}'")
            for key in ("refs", "wall_seconds", "refs_per_sec"):
                value = sample.get(key, 0)
                if not value or value <= 0:
                    fail(f"{name}/{workload}: {key} is {value!r}")
        aggregate = entry.get("refs_per_sec", 0)
        if not aggregate or aggregate <= 0:
            fail(f"{name}: aggregate refs_per_sec is {aggregate!r}")
        fastest = max(
            workloads[w]["refs_per_sec"] for w in EXPECTED_WORKLOADS
        )
        if aggregate > fastest * 1.001:
            fail(
                f"{name}: aggregate refs_per_sec ({aggregate:.0f}) "
                f"exceeds its fastest sample ({fastest:.0f})"
            )

    total = sum(
        by_name[n]["workloads"][w]["refs_per_sec"]
        for n in EXPECTED_DESIGNS
        for w in EXPECTED_WORKLOADS
    )
    print(
        f"check_perf: OK: {len(EXPECTED_DESIGNS)} designs x "
        f"{len(EXPECTED_WORKLOADS)} workloads, mean "
        f"{total / (len(EXPECTED_DESIGNS) * len(EXPECTED_WORKLOADS)):,.0f} "
        "refs/sec"
    )


if __name__ == "__main__":
    main()
