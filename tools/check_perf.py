#!/usr/bin/env python3
"""Validate perf-smoke benchmark reports (CI's perf-smoke job).

Dispatches on the report's "benchmark" field:

`hotpath` (BENCH_hotpath.json): self-measured wall-clock refs/sec for
a fixed gups + stream mix over every headline TLB design. The check
proves the report is *usable as a perf artifact* — it is not a perf
regression gate (CI machines vary), but it fails loudly when the
harness silently lost coverage:

  complete     every expected design is present
  measured     every (design, workload) sample carries refs > 0,
               wall_seconds > 0, and refs_per_sec > 0
  coherent     the per-design aggregate refs_per_sec is positive and
               no larger than its fastest workload sample

`multiprog` (BENCH_multiprog.json): the multiprogrammed sweep pairing
full-flush and ASID-tagged context-switch policies over identical
reference streams. Checks:

  complete     every headline design is present, every point "ok"
  paired       each full-flush record has an ASID-tagged twin with the
               same design/procs/quantum/mix and the same seed
  attributed   every record carries per-process miss rates matching
               num_procs, and nonzero context switches
  policy       full-flush records flush, ASID-tagged records never do
  wins         per design, the mean ASID-tagged L1 miss rate across
               the grid is strictly below the mean full-flush rate
  timed        any timing block carries positive wall_seconds and
               refs_per_sec

`google-benchmark` (micro_tlb_ops --benchmark_out=...): the raw JSON
google-benchmark emits (detected by its "context"/"benchmarks" keys
rather than a "benchmark" field). Checks every benchmark ran (no
error_occurred, positive real/cpu time) and none were skipped.

A multiprog report may instead be a *summary* (`"schema": "summary"`):
per-design geomean refs/sec plus aggregated multi-block counters,
produced with `--write-summary` from a full report. The committed
BENCH_multiprog.json baseline uses this form so refreshes stay a
dozen-line diff instead of thousands; `--baseline` accepts either form
on either side (full-vs-summary comparisons share the per-design
geomean samples).

With `--baseline <json>`, samples shared by both reports are compared
on refs/sec (for google-benchmark reports, 1/cpu_time): a sample below
0.9x its baseline rate warns, below 0.7x fails. Baselines are the
committed BENCH_*.json files at the repo root, regenerated on the
machine that measured them — meaningful on a quiet dedicated box, too
noisy to gate shared CI runners on.

Usage: tools/check_perf.py <BENCH_*.json> [--baseline <BENCH_*.json>]
                           [--write-summary <out.json>]
       (exit 0 clean, 1 otherwise)
"""

import json
import math
import sys

WARN_RATIO = 0.9
FAIL_RATIO = 0.7

EXPECTED_DESIGNS = ["split", "mix", "mix+colt", "hash-rehash", "skew"]
EXPECTED_WORKLOADS = ["gups", "stream"]


def fail(message: str) -> None:
    print(f"check_perf: FAIL: {message}")
    sys.exit(1)


def check_hotpath(report: dict) -> None:
    designs = report.get("designs", [])
    if not designs:
        fail("report has no designs block")
    by_name = {entry.get("design"): entry for entry in designs}
    missing = [d for d in EXPECTED_DESIGNS if d not in by_name]
    if missing:
        fail(f"missing designs: {', '.join(missing)}")

    for name in EXPECTED_DESIGNS:
        entry = by_name[name]
        workloads = entry.get("workloads", {})
        for workload in EXPECTED_WORKLOADS:
            sample = workloads.get(workload)
            if sample is None:
                fail(f"{name}: missing workload '{workload}'")
            for key in ("refs", "wall_seconds", "refs_per_sec"):
                value = sample.get(key, 0)
                if not value or value <= 0:
                    fail(f"{name}/{workload}: {key} is {value!r}")
        aggregate = entry.get("refs_per_sec", 0)
        if not aggregate or aggregate <= 0:
            fail(f"{name}: aggregate refs_per_sec is {aggregate!r}")
        fastest = max(
            workloads[w]["refs_per_sec"] for w in EXPECTED_WORKLOADS
        )
        if aggregate > fastest * 1.001:
            fail(
                f"{name}: aggregate refs_per_sec ({aggregate:.0f}) "
                f"exceeds its fastest sample ({fastest:.0f})"
            )

    total = sum(
        by_name[n]["workloads"][w]["refs_per_sec"]
        for n in EXPECTED_DESIGNS
        for w in EXPECTED_WORKLOADS
    )
    print(
        f"check_perf: OK: {len(EXPECTED_DESIGNS)} designs x "
        f"{len(EXPECTED_WORKLOADS)} workloads, mean "
        f"{total / (len(EXPECTED_DESIGNS) * len(EXPECTED_WORKLOADS)):,.0f} "
        "refs/sec"
    )


def pair_key(config: dict) -> tuple:
    return (
        config.get("design"),
        config.get("num_procs"),
        config.get("quantum"),
        config.get("mix"),
    )


def check_multiprog(report: dict) -> None:
    if report.get("schema") == "summary":
        check_multiprog_summary(report)
        return
    results = report.get("results", [])
    if not results:
        fail("report has no results")
    if report.get("failures"):
        fail(f"{len(report['failures'])} quarantined points")

    flush, asid = {}, {}
    for record in results:
        label = record.get("label", "<unlabelled>")
        if record.get("status") != "ok":
            fail(f"{label}: status is {record.get('status')!r}")
        config = record.get("config", {})
        policy = config.get("policy")
        if policy == "full-flush":
            flush[pair_key(config)] = record
        elif policy == "asid":
            asid[pair_key(config)] = record
        else:
            fail(f"{label}: unknown policy {policy!r}")

        multi = record.get("multi")
        if multi is None:
            fail(f"{label}: missing multi block")
        rates = multi.get("proc_l1_miss_rates", [])
        if len(rates) != config.get("num_procs"):
            fail(
                f"{label}: {len(rates)} per-process miss rates for "
                f"{config.get('num_procs')} processes"
            )
        if multi.get("context_switches", 0) <= 0:
            fail(f"{label}: no context switches recorded")
        flushes = multi.get("full_flushes", 0)
        if policy == "full-flush" and flushes <= 0:
            fail(f"{label}: full-flush policy never flushed")
        if policy == "asid" and flushes != 0:
            fail(f"{label}: ASID-tagged policy flushed {flushes} times")

        timing = record.get("timing")
        if timing is not None:
            for key in ("wall_seconds", "refs_per_sec"):
                if timing.get(key, 0) <= 0:
                    fail(f"{label}: timing {key} is {timing.get(key)!r}")

    if set(flush) != set(asid):
        fail("full-flush and asid points do not pair up")
    seen = {key[0] for key in flush}
    missing = [d for d in EXPECTED_DESIGNS if d not in seen]
    if missing:
        fail(f"missing designs: {', '.join(missing)}")

    for key, flush_record in flush.items():
        asid_config = asid[key].get("config", {})
        if flush_record.get("config", {}).get("seed") != asid_config.get(
            "seed"
        ):
            fail(f"{key}: paired policies ran with different seeds")

    for design in EXPECTED_DESIGNS:
        keys = [k for k in flush if k[0] == design]
        flush_mean = sum(
            flush[k]["metrics"]["l1_miss_rate"] for k in keys
        ) / len(keys)
        asid_mean = sum(
            asid[k]["metrics"]["l1_miss_rate"] for k in keys
        ) / len(keys)
        if not asid_mean < flush_mean:
            fail(
                f"{design}: mean ASID-tagged L1 miss rate "
                f"({asid_mean:.6f}) not below full-flush "
                f"({flush_mean:.6f})"
            )
        print(
            f"check_perf: {design}: mean L1 miss "
            f"{flush_mean:.4%} (flush) -> {asid_mean:.4%} (asid)"
        )

    print(
        f"check_perf: OK: {len(results)} multiprog points, "
        f"{len(flush)} policy pairs across "
        f"{len(EXPECTED_DESIGNS)} designs"
    )


def geomean(values: list) -> float:
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


def summarize_multiprog(report: dict) -> dict:
    """Collapse a full multiprog report into the summary schema."""
    designs = {}
    for record in report.get("results", []):
        config = record.get("config", {})
        entry = designs.setdefault(
            config.get("design", "?"),
            {
                "points": 0,
                "timed_points": 0,
                "rates": [],
                "context_switches": 0,
                "full_flushes": 0,
                "flush_miss_rates": [],
                "asid_miss_rates": [],
            },
        )
        entry["points"] += 1
        timing = record.get("timing")
        if timing and timing.get("refs_per_sec", 0) > 0:
            entry["timed_points"] += 1
            entry["rates"].append(timing["refs_per_sec"])
        multi = record.get("multi", {})
        entry["context_switches"] += multi.get("context_switches", 0)
        entry["full_flushes"] += multi.get("full_flushes", 0)
        rate = record.get("metrics", {}).get("l1_miss_rate")
        if rate is not None:
            key = ("flush_miss_rates"
                   if config.get("policy") == "full-flush"
                   else "asid_miss_rates")
            entry[key].append(rate)

    out = {}
    for design, entry in sorted(designs.items()):
        flush_rates = entry.pop("flush_miss_rates")
        asid_rates = entry.pop("asid_miss_rates")
        rates = entry.pop("rates")
        entry["geomean_refs_per_sec"] = geomean(rates)
        entry["mean_l1_miss_rate_flush"] = (
            sum(flush_rates) / len(flush_rates) if flush_rates else 0.0
        )
        entry["mean_l1_miss_rate_asid"] = (
            sum(asid_rates) / len(asid_rates) if asid_rates else 0.0
        )
        out[design] = entry
    return {
        "benchmark": "multiprog",
        "schema": "summary",
        "source_points": len(report.get("results", [])),
        "designs": out,
    }


def check_multiprog_summary(report: dict) -> None:
    designs = report.get("designs", {})
    missing = [d for d in EXPECTED_DESIGNS if d not in designs]
    if missing:
        fail(f"summary missing designs: {', '.join(missing)}")
    for design, entry in designs.items():
        if entry.get("points", 0) <= 0:
            fail(f"{design}: summary has no points")
        if entry.get("timed_points", 0) > 0 and \
                entry.get("geomean_refs_per_sec", 0) <= 0:
            fail(f"{design}: timed points but no geomean rate")
        if entry.get("context_switches", 0) <= 0:
            fail(f"{design}: no context switches recorded")
        if entry.get("full_flushes", 0) <= 0:
            fail(f"{design}: full-flush policy never flushed")
        flush_mean = entry.get("mean_l1_miss_rate_flush", 0)
        asid_mean = entry.get("mean_l1_miss_rate_asid", 0)
        if not asid_mean < flush_mean:
            fail(
                f"{design}: mean ASID-tagged L1 miss rate "
                f"({asid_mean:.6f}) not below full-flush "
                f"({flush_mean:.6f})"
            )
        print(
            f"check_perf: {design}: mean L1 miss "
            f"{flush_mean:.4%} (flush) -> {asid_mean:.4%} (asid)"
        )
    print(
        f"check_perf: OK: multiprog summary of "
        f"{report.get('source_points', 0)} points across "
        f"{len(designs)} designs"
    )


def check_google_benchmark(report: dict) -> None:
    benchmarks = report.get("benchmarks", [])
    if not benchmarks:
        fail("google-benchmark report has no benchmarks")
    for bench in benchmarks:
        name = bench.get("name", "<unnamed>")
        if bench.get("error_occurred"):
            fail(f"{name}: {bench.get('error_message', 'error')}")
        if bench.get("skipped"):
            fail(f"{name}: skipped ({bench.get('skip_message', '')})")
        for key in ("real_time", "cpu_time"):
            if bench.get(key, 0) <= 0:
                fail(f"{name}: {key} is {bench.get(key)!r}")
    print(
        f"check_perf: OK: {len(benchmarks)} microbenchmarks measured"
    )


def report_kind(report: dict) -> str:
    if "benchmarks" in report and "context" in report:
        return "google-benchmark"
    return report.get("benchmark", "hotpath")


def rate_samples(report: dict) -> dict:
    """Flatten a report of any kind to {sample name: refs/sec}."""
    kind = report_kind(report)
    rates = {}
    if kind == "hotpath":
        for entry in report.get("designs", []):
            design = entry.get("design", "?")
            for workload, sample in entry.get("workloads", {}).items():
                rates[f"{design}/{workload}"] = sample.get(
                    "refs_per_sec", 0
                )
    elif kind == "multiprog":
        if report.get("schema") == "summary":
            for design, entry in report.get("designs", {}).items():
                rates[f"{design}/geomean"] = entry.get(
                    "geomean_refs_per_sec", 0
                )
        else:
            for record in report.get("results", []):
                timing = record.get("timing")
                if timing:
                    rates[record.get("label", "?")] = timing.get(
                        "refs_per_sec", 0
                    )
            # The per-design geomeans a summary carries, so a full
            # report can be gated against a summary baseline (and vice
            # versa) on the shared keys.
            summary = summarize_multiprog(report)
            for design, entry in summary["designs"].items():
                rates[f"{design}/geomean"] = entry[
                    "geomean_refs_per_sec"
                ]
    elif kind == "google-benchmark":
        # No refs/sec counter; compare on inverse cpu time per
        # iteration, which scales the same way.
        for bench in report.get("benchmarks", []):
            cpu = bench.get("cpu_time", 0)
            if cpu > 0:
                rates[bench.get("name", "?")] = 1.0 / cpu
    return rates


def check_baseline(report: dict, baseline: dict) -> None:
    if report_kind(report) != report_kind(baseline):
        fail(
            f"baseline kind {report_kind(baseline)!r} does not match "
            f"report kind {report_kind(report)!r}"
        )
    current = rate_samples(report)
    expected = rate_samples(baseline)
    shared = [k for k in expected if k in current and expected[k] > 0]
    if not shared:
        fail("baseline and report share no measurable samples")

    worst_name, worst_ratio = None, None
    failures, warnings = [], []
    for name in shared:
        ratio = current[name] / expected[name]
        if worst_ratio is None or ratio < worst_ratio:
            worst_name, worst_ratio = name, ratio
        if ratio < FAIL_RATIO:
            failures.append(f"{name}: {ratio:.2f}x baseline")
        elif ratio < WARN_RATIO:
            warnings.append(f"{name}: {ratio:.2f}x baseline")
    for line in warnings:
        print(f"check_perf: WARN: {line}")
    if failures:
        fail(
            f"{len(failures)} samples below {FAIL_RATIO}x baseline: "
            + "; ".join(failures)
        )
    print(
        f"check_perf: baseline OK: {len(shared)} samples, worst "
        f"{worst_name} at {worst_ratio:.2f}x"
    )


def main() -> None:
    argv = sys.argv[1:]
    baseline_path = None
    summary_path = None
    if "--baseline" in argv:
        at = argv.index("--baseline")
        if at + 1 >= len(argv):
            fail("--baseline requires a path")
        baseline_path = argv[at + 1]
        del argv[at:at + 2]
    if "--write-summary" in argv:
        at = argv.index("--write-summary")
        if at + 1 >= len(argv):
            fail("--write-summary requires a path")
        summary_path = argv[at + 1]
        del argv[at:at + 2]
    if len(argv) != 1:
        fail("usage: check_perf.py <report.json> [--baseline <json>] "
             "[--write-summary <out.json>]")
    with open(argv[0], encoding="utf-8") as handle:
        report = json.load(handle)

    kind = report_kind(report)
    if kind == "hotpath":
        check_hotpath(report)
    elif kind == "multiprog":
        check_multiprog(report)
    elif kind == "google-benchmark":
        check_google_benchmark(report)
    else:
        fail(f"unknown benchmark kind {kind!r}")

    if summary_path is not None:
        if kind != "multiprog" or report.get("schema") == "summary":
            fail("--write-summary needs a full multiprog report")
        with open(summary_path, "w", encoding="utf-8") as handle:
            json.dump(summarize_multiprog(report), handle, indent=2)
            handle.write("\n")
        print(f"check_perf: wrote summary to {summary_path}")

    if baseline_path is not None:
        with open(baseline_path, encoding="utf-8") as handle:
            baseline = json.load(handle)
        check_baseline(report, baseline)


if __name__ == "__main__":
    main()
