#!/usr/bin/env python3
"""Repo-local lint: style rules clang-tidy cannot express.

Rules (each one exists because a PR once violated it):
  raw-assert      no raw assert( / #include <cassert>; contracts
                  (MIX_EXPECT / MIX_AUDIT) are the only sanctioned
                  invariant checks -- assert() vanishes under NDEBUG
                  and its message carries no context.
  include-guard   src/ headers guard with MIXTLB_<DIR>_<NAME>_HH so
                  guards never collide as directories grow.
  banned-random   no std::rand/srand/rand(): sweeps must be seeded and
                  deterministic (--jobs 1 == --jobs N); use
                  common/random.hh.

Usage: tools/lint.py [root]   (exit 0 clean, 1 with findings)
"""

import re
import sys
from pathlib import Path

SCAN_DIRS = ("src", "bench", "examples", "tests", "tools")
EXTENSIONS = {".hh", ".cc", ".cpp", ".h"}

RAW_ASSERT = re.compile(r"(?<![\w_])assert\s*\(")
STATIC_ASSERT = re.compile(r"static_assert\s*\(")
CASSERT = re.compile(r'#\s*include\s*[<"](cassert|assert\.h)[>"]')
BANNED_RANDOM = re.compile(r"(?<![\w_.:])(std::)?s?rand\s*\(")
GUARD = re.compile(r"#ifndef\s+(\S+)")


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments and string/char literals,
    preserving line structure so findings keep their line numbers."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | dq | sq
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "dq"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "sq"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # dq / sq
            quote = '"' if state == "dq" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" ")
        i += 1
    return "".join(out)


def expected_guard(path: Path, root: Path) -> str:
    rel = path.relative_to(root / "src")
    parts = list(rel.parts[:-1]) + [rel.stem]
    return "MIXTLB_" + "_".join(p.upper().replace("-", "_")
                                for p in parts) + "_HH"


def lint_file(path: Path, root: Path) -> list:
    findings = []
    text = path.read_text(encoding="utf-8", errors="replace")
    code = strip_comments(text)

    for lineno, line in enumerate(code.splitlines(), 1):
        for match in RAW_ASSERT.finditer(line):
            before = line[: match.start() + len("assert")]
            if STATIC_ASSERT.search(before + "("):
                continue
            findings.append((path, lineno, "raw-assert",
                             "use MIX_EXPECT/MIX_AUDIT, not assert()"))
        if CASSERT.search(line):
            findings.append((path, lineno, "raw-assert",
                             "do not include <cassert>; use "
                             "common/contracts.hh"))
        if BANNED_RANDOM.search(line):
            findings.append((path, lineno, "banned-random",
                             "rand()/srand() breaks sweep determinism;"
                             " use common/random.hh"))

    if path.suffix == ".hh" and (root / "src") in path.parents:
        match = GUARD.search(code)
        want = expected_guard(path, root)
        if not match:
            findings.append((path, 1, "include-guard",
                             f"missing include guard {want}"))
        elif match.group(1) != want:
            findings.append((path, 1, "include-guard",
                             f"guard {match.group(1)} should be {want}"))
    return findings


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(__file__).resolve().parent.parent
    findings = []
    checked = 0
    for top in SCAN_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in EXTENSIONS and path.is_file():
                checked += 1
                findings.extend(lint_file(path, root))
    for path, lineno, rule, message in findings:
        rel = path.relative_to(root)
        print(f"{rel}:{lineno}: [{rule}] {message}")
    print(f"lint: {checked} files, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
