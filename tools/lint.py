#!/usr/bin/env python3
"""Thin compatibility shim over tools/mixcheck.

The three historical lint rules (raw-assert, include-guard,
banned-random) now live in tools/mixcheck/legacy.py alongside the
repo-aware checkers (shift-width, determinism, hot-path-alloc,
layering, stat-drift). This wrapper keeps `tools/lint.py [root]`
working for muscle memory and old CI configs; new callers should run
`python3 tools/mixcheck` directly.

Usage: tools/lint.py [root]   (exit 0 clean, 1 with findings)
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent / "mixcheck"))

import cli  # noqa: E402


def main(argv):
    args = ["--root", argv[1]] if len(argv) > 1 else []
    return cli.main(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
