#!/usr/bin/env python3
"""Validate a fault-injection soak report (CI's soak job).

The soak runs a figure sweep with deterministic fault injection
(`--inject buddy-alloc=...,pressure-burst=...`) and `--allow-failures`,
then this script proves the degradation was *graceful*:

  ran          the sweep produced results (it did not abort)
  injected     the fault sites actually fired (the schedule was live)
  degraded     the OS recorded superpage->4KB fallbacks instead of
               dying (nonzero thp_fallbacks somewhere in the grid)
  bounded      quarantined points, if any, are a strict minority and
               each carries a structured error record

Reports produced with demotion storms (`--demote-storm R`, or
demote-storm in the --inject schedule) additionally prove the
memory-pressure lifecycle was live and harmless:

  stormed      the demote-storm site actually fired
  cycled       superpage demotions and page reclaims were recorded
  precise      no point was quarantined: every storm's shootdowns left
               the TLBs coherent (the paranoia oracle would have
               quarantined the point otherwise)

Usage: tools/check_soak.py <report.json>   (exit 0 clean, 1 otherwise)
"""

import json
import sys


def fail(message: str) -> None:
    print(f"check_soak: FAIL: {message}")
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_soak.py <report.json>")
    with open(sys.argv[1], encoding="utf-8") as handle:
        report = json.load(handle)

    results = report.get("results", [])
    failures = report.get("failures", [])
    if not results:
        fail("report has no results")
    if "inject" not in report:
        fail("report was not produced by an --inject run")

    ok = [r for r in results if r.get("status") == "ok"]
    failed = [r for r in results if r.get("status") == "failed"]
    if len(ok) + len(failed) != len(results):
        fail("results contain an unknown status")
    if len(failed) != len(failures):
        fail(
            f"failures block ({len(failures)}) disagrees with failed "
            f"results ({len(failed)})"
        )
    if not ok:
        fail("every sweep point was quarantined")
    if len(failed) * 2 >= len(results):
        fail(
            f"{len(failed)}/{len(results)} points quarantined -- "
            "degradation was not graceful"
        )
    for record in failed:
        error = record.get("error", {})
        if not error.get("kind"):
            fail("a quarantined point has no structured error kind")

    fires = {}
    for record in results:
        for site, count in record.get("faults", {}).items():
            fires[site] = fires.get(site, 0) + count
    if sum(fires.values()) == 0:
        fail("no faults fired anywhere: the injection schedule is dead")
    if fires.get("buddy-alloc", 0) == 0:
        fail("buddy-alloc never fired despite being injected")

    fallbacks = sum(
        r.get("metrics", {}).get("thp_fallbacks", 0) for r in ok
    )
    if fallbacks == 0:
        fail(
            "no superpage->4KB fallbacks recorded: injected allocation "
            "failures did not reach the OS degradation path"
        )

    stormed = report.get("demote_storm", 0) > 0 or "demote-storm" in report.get(
        "inject", ""
    )
    lifecycle = ""
    if stormed:
        if fires.get("demote-storm", 0) == 0:
            fail("demote-storm never fired despite being injected")
        demotions = sum(
            r.get("metrics", {}).get("demotions", 0) for r in ok
        )
        reclaims = sum(r.get("metrics", {}).get("reclaims", 0) for r in ok)
        if demotions == 0:
            fail("storms fired but no superpage demotions were recorded")
        if reclaims == 0:
            fail("storms fired but no page reclaims were recorded")
        if failed:
            fail(
                f"{len(failed)} points quarantined under demotion "
                "storms -- the lifecycle was not harmless"
            )
        lifecycle = f", demotions={demotions:.0f}, reclaims={reclaims:.0f}"

    print(
        f"check_soak: OK: {len(ok)}/{len(results)} points completed, "
        f"{len(failed)} quarantined, fires={fires}, "
        f"thp_fallbacks={fallbacks:.0f}{lifecycle}"
    )


if __name__ == "__main__":
    main()
