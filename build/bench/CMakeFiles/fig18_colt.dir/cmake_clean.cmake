file(REMOVE_RECURSE
  "CMakeFiles/fig18_colt.dir/fig18_colt.cc.o"
  "CMakeFiles/fig18_colt.dir/fig18_colt.cc.o.d"
  "fig18_colt"
  "fig18_colt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_colt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
