# Empty compiler generated dependencies file for fig18_colt.
# This may be replaced when dependencies are built.
