# Empty compiler generated dependencies file for fig15_fragmentation.
# This may be replaced when dependencies are built.
