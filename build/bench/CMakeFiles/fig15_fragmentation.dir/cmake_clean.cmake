file(REMOVE_RECURSE
  "CMakeFiles/fig15_fragmentation.dir/fig15_fragmentation.cc.o"
  "CMakeFiles/fig15_fragmentation.dir/fig15_fragmentation.cc.o.d"
  "fig15_fragmentation"
  "fig15_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
