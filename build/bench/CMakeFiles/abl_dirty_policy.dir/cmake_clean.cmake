file(REMOVE_RECURSE
  "CMakeFiles/abl_dirty_policy.dir/abl_dirty_policy.cc.o"
  "CMakeFiles/abl_dirty_policy.dir/abl_dirty_policy.cc.o.d"
  "abl_dirty_policy"
  "abl_dirty_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dirty_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
