# Empty compiler generated dependencies file for abl_dirty_policy.
# This may be replaced when dependencies are built.
