file(REMOVE_RECURSE
  "CMakeFiles/fig11_contiguity.dir/fig11_contiguity.cc.o"
  "CMakeFiles/fig11_contiguity.dir/fig11_contiguity.cc.o.d"
  "fig11_contiguity"
  "fig11_contiguity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_contiguity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
