# Empty dependencies file for fig11_contiguity.
# This may be replaced when dependencies are built.
