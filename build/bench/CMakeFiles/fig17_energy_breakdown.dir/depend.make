# Empty dependencies file for fig17_energy_breakdown.
# This may be replaced when dependencies are built.
