file(REMOVE_RECURSE
  "CMakeFiles/fig09_page_size_distribution.dir/fig09_page_size_distribution.cc.o"
  "CMakeFiles/fig09_page_size_distribution.dir/fig09_page_size_distribution.cc.o.d"
  "fig09_page_size_distribution"
  "fig09_page_size_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_page_size_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
