# Empty dependencies file for fig09_page_size_distribution.
# This may be replaced when dependencies are built.
