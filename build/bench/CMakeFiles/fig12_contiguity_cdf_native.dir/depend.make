# Empty dependencies file for fig12_contiguity_cdf_native.
# This may be replaced when dependencies are built.
