file(REMOVE_RECURSE
  "CMakeFiles/fig16_multi_indexing.dir/fig16_multi_indexing.cc.o"
  "CMakeFiles/fig16_multi_indexing.dir/fig16_multi_indexing.cc.o.d"
  "fig16_multi_indexing"
  "fig16_multi_indexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_multi_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
