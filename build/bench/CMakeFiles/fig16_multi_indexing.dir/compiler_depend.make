# Empty compiler generated dependencies file for fig16_multi_indexing.
# This may be replaced when dependencies are built.
