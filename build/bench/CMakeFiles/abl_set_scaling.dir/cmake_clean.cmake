file(REMOVE_RECURSE
  "CMakeFiles/abl_set_scaling.dir/abl_set_scaling.cc.o"
  "CMakeFiles/abl_set_scaling.dir/abl_set_scaling.cc.o.d"
  "abl_set_scaling"
  "abl_set_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_set_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
