# Empty compiler generated dependencies file for abl_set_scaling.
# This may be replaced when dependencies are built.
