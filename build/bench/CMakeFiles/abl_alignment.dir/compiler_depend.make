# Empty compiler generated dependencies file for abl_alignment.
# This may be replaced when dependencies are built.
