file(REMOVE_RECURSE
  "CMakeFiles/abl_alignment.dir/abl_alignment.cc.o"
  "CMakeFiles/abl_alignment.dir/abl_alignment.cc.o.d"
  "abl_alignment"
  "abl_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
