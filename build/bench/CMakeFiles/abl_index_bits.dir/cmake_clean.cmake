file(REMOVE_RECURSE
  "CMakeFiles/abl_index_bits.dir/abl_index_bits.cc.o"
  "CMakeFiles/abl_index_bits.dir/abl_index_bits.cc.o.d"
  "abl_index_bits"
  "abl_index_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_index_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
