# Empty dependencies file for abl_index_bits.
# This may be replaced when dependencies are built.
