file(REMOVE_RECURSE
  "CMakeFiles/micro_tlb_ops.dir/micro_tlb_ops.cc.o"
  "CMakeFiles/micro_tlb_ops.dir/micro_tlb_ops.cc.o.d"
  "micro_tlb_ops"
  "micro_tlb_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tlb_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
