# Empty dependencies file for micro_tlb_ops.
# This may be replaced when dependencies are built.
