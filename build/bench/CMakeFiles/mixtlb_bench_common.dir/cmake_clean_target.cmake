file(REMOVE_RECURSE
  "libmixtlb_bench_common.a"
)
