file(REMOVE_RECURSE
  "CMakeFiles/mixtlb_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/mixtlb_bench_common.dir/bench_common.cc.o.d"
  "libmixtlb_bench_common.a"
  "libmixtlb_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixtlb_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
