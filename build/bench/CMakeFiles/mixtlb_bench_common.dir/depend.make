# Empty dependencies file for mixtlb_bench_common.
# This may be replaced when dependencies are built.
