file(REMOVE_RECURSE
  "CMakeFiles/fig13_contiguity_cdf_virt_gpu.dir/fig13_contiguity_cdf_virt_gpu.cc.o"
  "CMakeFiles/fig13_contiguity_cdf_virt_gpu.dir/fig13_contiguity_cdf_virt_gpu.cc.o.d"
  "fig13_contiguity_cdf_virt_gpu"
  "fig13_contiguity_cdf_virt_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_contiguity_cdf_virt_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
