# Empty dependencies file for fig13_contiguity_cdf_virt_gpu.
# This may be replaced when dependencies are built.
