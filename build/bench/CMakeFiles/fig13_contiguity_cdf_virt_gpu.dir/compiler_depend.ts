# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig13_contiguity_cdf_virt_gpu.
