file(REMOVE_RECURSE
  "CMakeFiles/fig10_virt_page_distribution.dir/fig10_virt_page_distribution.cc.o"
  "CMakeFiles/fig10_virt_page_distribution.dir/fig10_virt_page_distribution.cc.o.d"
  "fig10_virt_page_distribution"
  "fig10_virt_page_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_virt_page_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
