# Empty compiler generated dependencies file for fig10_virt_page_distribution.
# This may be replaced when dependencies are built.
