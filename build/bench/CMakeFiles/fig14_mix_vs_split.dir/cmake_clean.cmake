file(REMOVE_RECURSE
  "CMakeFiles/fig14_mix_vs_split.dir/fig14_mix_vs_split.cc.o"
  "CMakeFiles/fig14_mix_vs_split.dir/fig14_mix_vs_split.cc.o.d"
  "fig14_mix_vs_split"
  "fig14_mix_vs_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_mix_vs_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
