# Empty dependencies file for fig14_mix_vs_split.
# This may be replaced when dependencies are built.
