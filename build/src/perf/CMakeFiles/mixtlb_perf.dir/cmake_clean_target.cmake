file(REMOVE_RECURSE
  "libmixtlb_perf.a"
)
