file(REMOVE_RECURSE
  "CMakeFiles/mixtlb_perf.dir/energy_model.cc.o"
  "CMakeFiles/mixtlb_perf.dir/energy_model.cc.o.d"
  "CMakeFiles/mixtlb_perf.dir/perf_model.cc.o"
  "CMakeFiles/mixtlb_perf.dir/perf_model.cc.o.d"
  "libmixtlb_perf.a"
  "libmixtlb_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixtlb_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
