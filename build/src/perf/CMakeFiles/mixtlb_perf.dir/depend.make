# Empty dependencies file for mixtlb_perf.
# This may be replaced when dependencies are built.
