file(REMOVE_RECURSE
  "CMakeFiles/mixtlb_common.dir/logging.cc.o"
  "CMakeFiles/mixtlb_common.dir/logging.cc.o.d"
  "CMakeFiles/mixtlb_common.dir/random.cc.o"
  "CMakeFiles/mixtlb_common.dir/random.cc.o.d"
  "CMakeFiles/mixtlb_common.dir/stats.cc.o"
  "CMakeFiles/mixtlb_common.dir/stats.cc.o.d"
  "libmixtlb_common.a"
  "libmixtlb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixtlb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
