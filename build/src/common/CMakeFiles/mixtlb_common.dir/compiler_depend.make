# Empty compiler generated dependencies file for mixtlb_common.
# This may be replaced when dependencies are built.
