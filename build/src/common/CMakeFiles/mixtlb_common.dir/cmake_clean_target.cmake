file(REMOVE_RECURSE
  "libmixtlb_common.a"
)
