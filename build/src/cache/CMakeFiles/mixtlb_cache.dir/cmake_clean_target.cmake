file(REMOVE_RECURSE
  "libmixtlb_cache.a"
)
