file(REMOVE_RECURSE
  "CMakeFiles/mixtlb_cache.dir/cache.cc.o"
  "CMakeFiles/mixtlb_cache.dir/cache.cc.o.d"
  "libmixtlb_cache.a"
  "libmixtlb_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixtlb_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
