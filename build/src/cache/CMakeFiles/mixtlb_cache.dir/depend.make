# Empty dependencies file for mixtlb_cache.
# This may be replaced when dependencies are built.
