# Empty compiler generated dependencies file for mixtlb_mem.
# This may be replaced when dependencies are built.
