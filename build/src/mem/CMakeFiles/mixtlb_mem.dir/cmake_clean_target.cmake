file(REMOVE_RECURSE
  "libmixtlb_mem.a"
)
