file(REMOVE_RECURSE
  "CMakeFiles/mixtlb_mem.dir/buddy_allocator.cc.o"
  "CMakeFiles/mixtlb_mem.dir/buddy_allocator.cc.o.d"
  "CMakeFiles/mixtlb_mem.dir/phys_mem.cc.o"
  "CMakeFiles/mixtlb_mem.dir/phys_mem.cc.o.d"
  "libmixtlb_mem.a"
  "libmixtlb_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixtlb_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
