file(REMOVE_RECURSE
  "libmixtlb_tlb.a"
)
