
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tlb/base.cc" "src/tlb/CMakeFiles/mixtlb_tlb.dir/base.cc.o" "gcc" "src/tlb/CMakeFiles/mixtlb_tlb.dir/base.cc.o.d"
  "/root/repo/src/tlb/colt.cc" "src/tlb/CMakeFiles/mixtlb_tlb.dir/colt.cc.o" "gcc" "src/tlb/CMakeFiles/mixtlb_tlb.dir/colt.cc.o.d"
  "/root/repo/src/tlb/hash_rehash.cc" "src/tlb/CMakeFiles/mixtlb_tlb.dir/hash_rehash.cc.o" "gcc" "src/tlb/CMakeFiles/mixtlb_tlb.dir/hash_rehash.cc.o.d"
  "/root/repo/src/tlb/hierarchy.cc" "src/tlb/CMakeFiles/mixtlb_tlb.dir/hierarchy.cc.o" "gcc" "src/tlb/CMakeFiles/mixtlb_tlb.dir/hierarchy.cc.o.d"
  "/root/repo/src/tlb/mix.cc" "src/tlb/CMakeFiles/mixtlb_tlb.dir/mix.cc.o" "gcc" "src/tlb/CMakeFiles/mixtlb_tlb.dir/mix.cc.o.d"
  "/root/repo/src/tlb/predictor.cc" "src/tlb/CMakeFiles/mixtlb_tlb.dir/predictor.cc.o" "gcc" "src/tlb/CMakeFiles/mixtlb_tlb.dir/predictor.cc.o.d"
  "/root/repo/src/tlb/set_assoc.cc" "src/tlb/CMakeFiles/mixtlb_tlb.dir/set_assoc.cc.o" "gcc" "src/tlb/CMakeFiles/mixtlb_tlb.dir/set_assoc.cc.o.d"
  "/root/repo/src/tlb/skew.cc" "src/tlb/CMakeFiles/mixtlb_tlb.dir/skew.cc.o" "gcc" "src/tlb/CMakeFiles/mixtlb_tlb.dir/skew.cc.o.d"
  "/root/repo/src/tlb/split.cc" "src/tlb/CMakeFiles/mixtlb_tlb.dir/split.cc.o" "gcc" "src/tlb/CMakeFiles/mixtlb_tlb.dir/split.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mixtlb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/mixtlb_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mixtlb_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mixtlb_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
