# Empty dependencies file for mixtlb_tlb.
# This may be replaced when dependencies are built.
