file(REMOVE_RECURSE
  "CMakeFiles/mixtlb_tlb.dir/base.cc.o"
  "CMakeFiles/mixtlb_tlb.dir/base.cc.o.d"
  "CMakeFiles/mixtlb_tlb.dir/colt.cc.o"
  "CMakeFiles/mixtlb_tlb.dir/colt.cc.o.d"
  "CMakeFiles/mixtlb_tlb.dir/hash_rehash.cc.o"
  "CMakeFiles/mixtlb_tlb.dir/hash_rehash.cc.o.d"
  "CMakeFiles/mixtlb_tlb.dir/hierarchy.cc.o"
  "CMakeFiles/mixtlb_tlb.dir/hierarchy.cc.o.d"
  "CMakeFiles/mixtlb_tlb.dir/mix.cc.o"
  "CMakeFiles/mixtlb_tlb.dir/mix.cc.o.d"
  "CMakeFiles/mixtlb_tlb.dir/predictor.cc.o"
  "CMakeFiles/mixtlb_tlb.dir/predictor.cc.o.d"
  "CMakeFiles/mixtlb_tlb.dir/set_assoc.cc.o"
  "CMakeFiles/mixtlb_tlb.dir/set_assoc.cc.o.d"
  "CMakeFiles/mixtlb_tlb.dir/skew.cc.o"
  "CMakeFiles/mixtlb_tlb.dir/skew.cc.o.d"
  "CMakeFiles/mixtlb_tlb.dir/split.cc.o"
  "CMakeFiles/mixtlb_tlb.dir/split.cc.o.d"
  "libmixtlb_tlb.a"
  "libmixtlb_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixtlb_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
