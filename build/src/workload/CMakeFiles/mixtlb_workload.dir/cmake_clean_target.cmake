file(REMOVE_RECURSE
  "libmixtlb_workload.a"
)
