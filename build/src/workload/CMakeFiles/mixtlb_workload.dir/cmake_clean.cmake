file(REMOVE_RECURSE
  "CMakeFiles/mixtlb_workload.dir/generator.cc.o"
  "CMakeFiles/mixtlb_workload.dir/generator.cc.o.d"
  "CMakeFiles/mixtlb_workload.dir/trace_file.cc.o"
  "CMakeFiles/mixtlb_workload.dir/trace_file.cc.o.d"
  "libmixtlb_workload.a"
  "libmixtlb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixtlb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
