# Empty compiler generated dependencies file for mixtlb_workload.
# This may be replaced when dependencies are built.
