file(REMOVE_RECURSE
  "libmixtlb_gpu.a"
)
