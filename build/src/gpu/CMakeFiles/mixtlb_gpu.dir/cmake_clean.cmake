file(REMOVE_RECURSE
  "CMakeFiles/mixtlb_gpu.dir/gpu_system.cc.o"
  "CMakeFiles/mixtlb_gpu.dir/gpu_system.cc.o.d"
  "libmixtlb_gpu.a"
  "libmixtlb_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixtlb_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
