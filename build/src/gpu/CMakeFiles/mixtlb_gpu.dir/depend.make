# Empty dependencies file for mixtlb_gpu.
# This may be replaced when dependencies are built.
