file(REMOVE_RECURSE
  "libmixtlb_virt.a"
)
