# Empty dependencies file for mixtlb_virt.
# This may be replaced when dependencies are built.
