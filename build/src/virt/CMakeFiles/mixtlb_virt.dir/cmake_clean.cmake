file(REMOVE_RECURSE
  "CMakeFiles/mixtlb_virt.dir/nested_walk.cc.o"
  "CMakeFiles/mixtlb_virt.dir/nested_walk.cc.o.d"
  "CMakeFiles/mixtlb_virt.dir/vm.cc.o"
  "CMakeFiles/mixtlb_virt.dir/vm.cc.o.d"
  "libmixtlb_virt.a"
  "libmixtlb_virt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixtlb_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
