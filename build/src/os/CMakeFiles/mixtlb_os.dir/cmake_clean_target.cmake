file(REMOVE_RECURSE
  "libmixtlb_os.a"
)
