
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/memhog.cc" "src/os/CMakeFiles/mixtlb_os.dir/memhog.cc.o" "gcc" "src/os/CMakeFiles/mixtlb_os.dir/memhog.cc.o.d"
  "/root/repo/src/os/memory_manager.cc" "src/os/CMakeFiles/mixtlb_os.dir/memory_manager.cc.o" "gcc" "src/os/CMakeFiles/mixtlb_os.dir/memory_manager.cc.o.d"
  "/root/repo/src/os/process.cc" "src/os/CMakeFiles/mixtlb_os.dir/process.cc.o" "gcc" "src/os/CMakeFiles/mixtlb_os.dir/process.cc.o.d"
  "/root/repo/src/os/scan.cc" "src/os/CMakeFiles/mixtlb_os.dir/scan.cc.o" "gcc" "src/os/CMakeFiles/mixtlb_os.dir/scan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mixtlb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mixtlb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/mixtlb_pt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
