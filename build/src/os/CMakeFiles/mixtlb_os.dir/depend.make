# Empty dependencies file for mixtlb_os.
# This may be replaced when dependencies are built.
