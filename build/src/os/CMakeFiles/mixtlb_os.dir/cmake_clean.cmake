file(REMOVE_RECURSE
  "CMakeFiles/mixtlb_os.dir/memhog.cc.o"
  "CMakeFiles/mixtlb_os.dir/memhog.cc.o.d"
  "CMakeFiles/mixtlb_os.dir/memory_manager.cc.o"
  "CMakeFiles/mixtlb_os.dir/memory_manager.cc.o.d"
  "CMakeFiles/mixtlb_os.dir/process.cc.o"
  "CMakeFiles/mixtlb_os.dir/process.cc.o.d"
  "CMakeFiles/mixtlb_os.dir/scan.cc.o"
  "CMakeFiles/mixtlb_os.dir/scan.cc.o.d"
  "libmixtlb_os.a"
  "libmixtlb_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixtlb_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
