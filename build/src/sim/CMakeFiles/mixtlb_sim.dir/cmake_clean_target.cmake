file(REMOVE_RECURSE
  "libmixtlb_sim.a"
)
