# Empty dependencies file for mixtlb_sim.
# This may be replaced when dependencies are built.
