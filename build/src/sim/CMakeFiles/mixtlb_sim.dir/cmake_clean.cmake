file(REMOVE_RECURSE
  "CMakeFiles/mixtlb_sim.dir/cli.cc.o"
  "CMakeFiles/mixtlb_sim.dir/cli.cc.o.d"
  "CMakeFiles/mixtlb_sim.dir/configs.cc.o"
  "CMakeFiles/mixtlb_sim.dir/configs.cc.o.d"
  "CMakeFiles/mixtlb_sim.dir/machine.cc.o"
  "CMakeFiles/mixtlb_sim.dir/machine.cc.o.d"
  "libmixtlb_sim.a"
  "libmixtlb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixtlb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
