file(REMOVE_RECURSE
  "CMakeFiles/mixtlb_pt.dir/page_table.cc.o"
  "CMakeFiles/mixtlb_pt.dir/page_table.cc.o.d"
  "CMakeFiles/mixtlb_pt.dir/pwc.cc.o"
  "CMakeFiles/mixtlb_pt.dir/pwc.cc.o.d"
  "CMakeFiles/mixtlb_pt.dir/walker.cc.o"
  "CMakeFiles/mixtlb_pt.dir/walker.cc.o.d"
  "libmixtlb_pt.a"
  "libmixtlb_pt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixtlb_pt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
