file(REMOVE_RECURSE
  "libmixtlb_pt.a"
)
