# Empty compiler generated dependencies file for mixtlb_pt.
# This may be replaced when dependencies are built.
