file(REMOVE_RECURSE
  "CMakeFiles/test_pt.dir/test_pt.cc.o"
  "CMakeFiles/test_pt.dir/test_pt.cc.o.d"
  "test_pt"
  "test_pt.pdb"
  "test_pt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
