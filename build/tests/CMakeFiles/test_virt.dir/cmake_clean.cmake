file(REMOVE_RECURSE
  "CMakeFiles/test_virt.dir/test_virt.cc.o"
  "CMakeFiles/test_virt.dir/test_virt.cc.o.d"
  "test_virt"
  "test_virt.pdb"
  "test_virt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
