# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_pt[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_os[1]_include.cmake")
include("/root/repo/build/tests/test_mix[1]_include.cmake")
include("/root/repo/build/tests/test_tlb[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_virt[1]_include.cmake")
include("/root/repo/build/tests/test_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_perf[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
