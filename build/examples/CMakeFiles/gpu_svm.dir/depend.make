# Empty dependencies file for gpu_svm.
# This may be replaced when dependencies are built.
