file(REMOVE_RECURSE
  "CMakeFiles/gpu_svm.dir/gpu_svm.cpp.o"
  "CMakeFiles/gpu_svm.dir/gpu_svm.cpp.o.d"
  "gpu_svm"
  "gpu_svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
