# Empty dependencies file for bigmem_native.
# This may be replaced when dependencies are built.
