file(REMOVE_RECURSE
  "CMakeFiles/bigmem_native.dir/bigmem_native.cpp.o"
  "CMakeFiles/bigmem_native.dir/bigmem_native.cpp.o.d"
  "bigmem_native"
  "bigmem_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bigmem_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
