
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/trace_record_replay.cpp" "examples/CMakeFiles/trace_record_replay.dir/trace_record_replay.cpp.o" "gcc" "examples/CMakeFiles/trace_record_replay.dir/trace_record_replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mixtlb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/mixtlb_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/mixtlb_os.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/mixtlb_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/mixtlb_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/mixtlb_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mixtlb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mixtlb_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/mixtlb_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mixtlb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mixtlb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
