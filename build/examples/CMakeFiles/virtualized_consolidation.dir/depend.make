# Empty dependencies file for virtualized_consolidation.
# This may be replaced when dependencies are built.
