file(REMOVE_RECURSE
  "CMakeFiles/virtualized_consolidation.dir/virtualized_consolidation.cpp.o"
  "CMakeFiles/virtualized_consolidation.dir/virtualized_consolidation.cpp.o.d"
  "virtualized_consolidation"
  "virtualized_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtualized_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
